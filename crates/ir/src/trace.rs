//! Dynamic dataflow traces.
//!
//! The host out-of-order timing model is trace-driven: the program is
//! executed functionally once while emitting one [`DynOp`] per retired
//! operation, with explicit data-dependence edges (register deps through
//! expression trees and scalars, memory deps through per-element last-store
//! tracking). Timing is then derived by replaying the trace through a
//! ROB-windowed issue model against the cycle-level memory system —
//! functional values never depend on timing, so this split is exact.

use crate::expr::{ArrayId, Expr};
use crate::interp::Memory;
use crate::program::{Program, Stmt};
use crate::value::Value;

/// Sentinel meaning "no dependence".
pub const NO_DEP: u32 = u32::MAX;

/// One retired dynamic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynOp {
    /// Operation class.
    pub kind: OpKind,
    /// First data dependence (trace index) or [`NO_DEP`].
    pub dep1: u32,
    /// Second data dependence (trace index) or [`NO_DEP`].
    pub dep2: u32,
}

/// Dynamic operation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Arithmetic/logic with the given latency in core cycles.
    Alu {
        /// Execution latency.
        lat: u8,
    },
    /// Memory read of 8 bytes at `addr`.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// Memory write of 8 bytes at `addr`.
    Store {
        /// Byte address.
        addr: u64,
    },
}

/// Byte layout of a program's arrays in the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    bases: Vec<u64>,
}

impl Layout {
    /// Lays arrays out contiguously from `start`, each 64-byte aligned.
    pub fn new(prog: &Program, start: u64) -> Self {
        let mut bases = Vec::with_capacity(prog.arrays.len());
        let mut cursor = (start + 63) & !63;
        for a in &prog.arrays {
            bases.push(cursor);
            cursor += (a.len as u64 * Program::ELEM_BYTES + 63) & !63;
        }
        Self { bases }
    }

    /// Creates a layout from explicit per-array base addresses (the slab
    /// allocator uses this to anchor objects at home clusters).
    ///
    /// # Panics
    ///
    /// Panics if the base count does not match the array count at use time
    /// (checked by `addr`).
    pub fn from_bases(bases: Vec<u64>) -> Self {
        Self { bases }
    }

    /// Byte address of `array[idx]`.
    pub fn addr(&self, a: ArrayId, idx: i64) -> u64 {
        let base = self.bases[a.0];
        base.wrapping_add((idx.max(0) as u64) * Program::ELEM_BYTES)
    }

    /// Base address of an array.
    pub fn base(&self, a: ArrayId) -> u64 {
        self.bases[a.0]
    }

    /// Byte range `[start, end)` of an array.
    pub fn range(&self, prog: &Program, a: ArrayId) -> (u64, u64) {
        let b = self.bases[a.0];
        (b, b + prog.arrays[a.0].len as u64 * Program::ELEM_BYTES)
    }
}

/// A completed trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Retired operations in program order.
    pub ops: Vec<DynOp>,
    /// Final scalar values.
    pub scalars: Vec<Value>,
}

impl Trace {
    /// Number of memory operations in the trace.
    pub fn mem_ops(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Load { .. } | OpKind::Store { .. }))
            .count() as u64
    }

    /// Number of ALU operations in the trace.
    pub fn alu_ops(&self) -> u64 {
        self.ops.len() as u64 - self.mem_ops()
    }
}

struct TraceGen<'p> {
    prog: &'p Program,
    layout: &'p Layout,
    ops: Vec<DynOp>,
    scalars: Vec<Value>,
    scalar_src: Vec<u32>,
    loop_vars: Vec<i64>,
    /// Per-array, per-element index of the last store op (memory deps).
    last_store: Vec<Vec<u32>>,
    budget: u64,
}

impl<'p> TraceGen<'p> {
    fn emit(&mut self, kind: OpKind, dep1: u32, dep2: u32) -> u32 {
        let idx = self.ops.len() as u32;
        assert!(idx != NO_DEP, "trace too long");
        self.ops.push(DynOp { kind, dep1, dep2 });
        idx
    }

    fn eval(&mut self, e: &Expr, mem: &mut Memory) -> (Value, u32) {
        match e {
            Expr::Const(v) => (*v, NO_DEP),
            Expr::LoopVar(lv) => (Value::I(self.loop_vars[lv.0]), NO_DEP),
            Expr::Scalar(s) => (self.scalars[s.0], self.scalar_src[s.0]),
            Expr::Load(a, idx) => {
                let (iv, idep) = self.eval(idx, mem);
                let i = iv.as_i64();
                let addr = self.layout.addr(*a, i);
                let mdep = self.last_store[a.0]
                    .get(i.max(0) as usize)
                    .copied()
                    .unwrap_or(NO_DEP);
                let op = self.emit(OpKind::Load { addr }, idep, mdep);
                (mem.load(*a, i), op)
            }
            Expr::Bin(op, a, b) => {
                let (va, da) = self.eval(a, mem);
                let (vb, db) = self.eval(b, mem);
                let lat = op.latency() as u8;
                let idx = self.emit(OpKind::Alu { lat }, da, db);
                (op.apply(va, vb), idx)
            }
            Expr::Un(op, a) => {
                let (va, da) = self.eval(a, mem);
                let lat = op.latency() as u8;
                let idx = self.emit(OpKind::Alu { lat }, da, NO_DEP);
                (op.apply(va), idx)
            }
            Expr::Select(c, a, b) => {
                let (vc, dc) = self.eval(c, mem);
                let (va, da) = self.eval(a, mem);
                let (vb, db) = self.eval(b, mem);
                let chosen_dep = if vc.truthy() { da } else { db };
                let idx = self.emit(OpKind::Alu { lat: 1 }, dc, chosen_dep);
                (if vc.truthy() { va } else { vb }, idx)
            }
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], mem: &mut Memory) {
        for s in stmts {
            self.exec(s, mem);
        }
    }

    fn exec(&mut self, s: &Stmt, mem: &mut Memory) {
        self.budget = self.budget.checked_sub(1).expect("trace budget exhausted");
        match s {
            Stmt::Store(a, idx, val) => {
                let (iv, idep) = self.eval(idx, mem);
                let (v, vdep) = self.eval(val, mem);
                let i = iv.as_i64();
                let addr = self.layout.addr(*a, i);
                let op = self.emit(OpKind::Store { addr }, vdep, idep);
                let slot = i.max(0) as usize;
                if let Some(ls) = self.last_store[a.0].get_mut(slot) {
                    *ls = op;
                }
                mem.store(*a, i, v);
            }
            Stmt::SetScalar(sid, e) => {
                let (v, dep) = self.eval(e, mem);
                self.scalars[sid.0] = v;
                self.scalar_src[sid.0] = dep;
            }
            Stmt::If(c, t, e) => {
                let (vc, _dep) = self.eval(c, mem);
                // Branch assumed predicted: no control serialization.
                if vc.truthy() {
                    self.exec_block(t, mem);
                } else {
                    self.exec_block(e, mem);
                }
            }
            Stmt::Loop(l) => {
                let (sv, _) = self.eval(&l.start, mem);
                let (ev, _) = self.eval(&l.end, mem);
                let (start, end) = (sv.as_i64(), ev.as_i64());
                let mut i = start;
                while (l.step > 0 && i < end) || (l.step < 0 && i > end) {
                    self.loop_vars[l.var.0] = i;
                    // Induction update + compare/branch overhead.
                    self.emit(OpKind::Alu { lat: 1 }, NO_DEP, NO_DEP);
                    self.exec_block(&l.body, mem);
                    i += l.step;
                }
            }
        }
    }
}

/// Executes `prog` over `mem`, returning the dataflow trace. `mem` holds
/// the final (reference-identical) memory image afterwards.
pub fn trace_program(prog: &Program, layout: &Layout, mem: &mut Memory) -> Trace {
    let mut gen = TraceGen {
        prog,
        layout,
        ops: Vec::new(),
        scalars: prog.scalars.iter().map(|s| s.init).collect(),
        scalar_src: vec![NO_DEP; prog.scalars.len()],
        loop_vars: vec![0; prog.loop_var_count],
        last_store: prog.arrays.iter().map(|a| vec![NO_DEP; a.len]).collect(),
        budget: 2_000_000_000,
    };
    let body = &gen.prog.body;
    gen.exec_block(body, mem);
    Trace {
        ops: gen.ops,
        scalars: gen.scalars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use crate::program::ProgramBuilder;

    fn axpy() -> (Program, crate::expr::ArrayId, crate::expr::ArrayId) {
        let mut b = ProgramBuilder::new("axpy");
        let x = b.array_f64("x", 8);
        let y = b.array_f64("y", 8);
        b.for_(0, 8, 1, |b, i| {
            let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
            b.store(y, i, v);
        });
        (b.build(), x, y)
    }

    #[test]
    fn trace_memory_matches_reference_interpreter() {
        let (p, x, _) = axpy();
        let layout = Layout::new(&p, 0x1000);
        let mut m1 = Memory::for_program(&p);
        let mut m2 = Memory::for_program(&p);
        for i in 0..8 {
            m1.array_mut(x)[i] = Value::F(i as f64);
            m2.array_mut(x)[i] = Value::F(i as f64);
        }
        interp::run(&p, &mut m1);
        trace_program(&p, &layout, &mut m2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn trace_counts_expected_ops() {
        let (p, _, _) = axpy();
        let layout = Layout::new(&p, 0);
        let mut mem = Memory::for_program(&p);
        let t = trace_program(&p, &layout, &mut mem);
        // Per iteration: loop overhead + 2 loads + mul + add + store = 6.
        assert_eq!(t.ops.len(), 8 * 6);
        assert_eq!(t.mem_ops(), 8 * 3);
        assert_eq!(t.alu_ops(), 8 * 3);
    }

    #[test]
    fn deps_point_backwards_only() {
        let (p, _, _) = axpy();
        let layout = Layout::new(&p, 0);
        let mut mem = Memory::for_program(&p);
        let t = trace_program(&p, &layout, &mut mem);
        for (i, op) in t.ops.iter().enumerate() {
            for d in [op.dep1, op.dep2] {
                assert!(d == NO_DEP || (d as usize) < i, "forward dep at {i}");
            }
        }
    }

    #[test]
    fn store_load_memory_dependence_is_recorded() {
        let mut b = ProgramBuilder::new("chain");
        let x = b.array_i64("x", 2);
        b.store(x, Expr::c(0), Expr::c(5));
        let loaded = Expr::load(x, Expr::c(0));
        b.store(x, Expr::c(1), loaded + Expr::c(1));
        let p = b.build();
        let layout = Layout::new(&p, 0);
        let mut mem = Memory::for_program(&p);
        let t = trace_program(&p, &layout, &mut mem);
        // Find the load; it must depend on the first store.
        let store0 = t
            .ops
            .iter()
            .position(|o| matches!(o.kind, OpKind::Store { .. }))
            .unwrap() as u32;
        let load = t
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Load { .. }))
            .unwrap();
        assert!(load.dep1 == store0 || load.dep2 == store0);
        assert_eq!(mem.array(x)[1], Value::I(6));
    }

    #[test]
    fn layout_is_line_aligned_and_disjoint() {
        let (p, x, y) = axpy();
        let layout = Layout::new(&p, 0x12345);
        assert_eq!(layout.base(x) % 64, 0);
        assert_eq!(layout.base(y) % 64, 0);
        let (xs, xe) = layout.range(&p, x);
        let (ys, ye) = layout.range(&p, y);
        assert!(xe <= ys || ye <= xs, "array ranges overlap");
    }

    #[test]
    fn addresses_step_by_element_size() {
        let (p, x, _) = axpy();
        let layout = Layout::new(&p, 0);
        assert_eq!(layout.addr(x, 1) - layout.addr(x, 0), 8);
    }

    #[test]
    fn pointer_chase_has_serial_load_chain() {
        let mut b = ProgramBuilder::new("pch");
        let next = b.array_i64("next", 8);
        let pv = b.scalar("p", 0i64);
        b.for_(0, 4, 1, |b, _| {
            b.set(pv, Expr::load(next, Expr::Scalar(pv)));
        });
        let p = b.build();
        let layout = Layout::new(&p, 0);
        let mut mem = Memory::for_program(&p);
        for i in 0..8 {
            mem.array_mut(next)[i] = Value::I((i as i64 + 1) % 8);
        }
        let t = trace_program(&p, &layout, &mut mem);
        let loads: Vec<(usize, &DynOp)> = t
            .ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o.kind, OpKind::Load { .. }))
            .collect();
        assert_eq!(loads.len(), 4);
        // Each load's index dep chains to the previous load.
        for w in loads.windows(2) {
            let (prev_idx, _) = w[0];
            let (_, op) = w[1];
            assert_eq!(op.dep1, prev_idx as u32);
        }
    }
}
