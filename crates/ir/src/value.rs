//! Runtime values: 64-bit integers and doubles with C-like promotion.

use std::fmt;

/// A scalar runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    I(i64),
    /// IEEE double.
    F(f64),
}

// Builder methods intentionally mirror the IR operator names
// (`add`, `not`, ...); they are not operator-trait impls.
#[allow(clippy::should_implement_trait)]
impl Value {
    /// Integer view (floats truncate, as a C cast would).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as i64,
        }
    }

    /// Float view.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }

    /// Truthiness (non-zero).
    pub fn truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }

    fn promote(a: Value, b: Value) -> bool {
        matches!(a, Value::F(_)) || matches!(b, Value::F(_))
    }

    fn bin_f(a: Value, b: Value, f: impl Fn(f64, f64) -> f64) -> Value {
        Value::F(f(a.as_f64(), b.as_f64()))
    }

    fn bin_i(a: Value, b: Value, f: impl Fn(i64, i64) -> i64) -> Value {
        Value::I(f(a.as_i64(), b.as_i64()))
    }

    /// Addition with promotion.
    pub fn add(a: Value, b: Value) -> Value {
        if Self::promote(a, b) {
            Self::bin_f(a, b, |x, y| x + y)
        } else {
            Self::bin_i(a, b, i64::wrapping_add)
        }
    }

    /// Subtraction with promotion.
    pub fn sub(a: Value, b: Value) -> Value {
        if Self::promote(a, b) {
            Self::bin_f(a, b, |x, y| x - y)
        } else {
            Self::bin_i(a, b, i64::wrapping_sub)
        }
    }

    /// Multiplication with promotion.
    pub fn mul(a: Value, b: Value) -> Value {
        if Self::promote(a, b) {
            Self::bin_f(a, b, |x, y| x * y)
        } else {
            Self::bin_i(a, b, i64::wrapping_mul)
        }
    }

    /// Division. Integer division by zero yields zero (the simulated
    /// kernels never divide by zero; this keeps the interpreter total).
    pub fn div(a: Value, b: Value) -> Value {
        if Self::promote(a, b) {
            Self::bin_f(a, b, |x, y| x / y)
        } else {
            Self::bin_i(a, b, |x, y| if y == 0 { 0 } else { x.wrapping_div(y) })
        }
    }

    /// Remainder (integer semantics; floats use `%`).
    pub fn rem(a: Value, b: Value) -> Value {
        if Self::promote(a, b) {
            Self::bin_f(a, b, |x, y| x % y)
        } else {
            Self::bin_i(a, b, |x, y| if y == 0 { 0 } else { x.wrapping_rem(y) })
        }
    }

    /// Minimum with promotion.
    pub fn min(a: Value, b: Value) -> Value {
        if Self::promote(a, b) {
            Self::bin_f(a, b, f64::min)
        } else {
            Self::bin_i(a, b, i64::min)
        }
    }

    /// Maximum with promotion.
    pub fn max(a: Value, b: Value) -> Value {
        if Self::promote(a, b) {
            Self::bin_f(a, b, f64::max)
        } else {
            Self::bin_i(a, b, i64::max)
        }
    }

    fn cmp_val(a: Value, b: Value, f: impl Fn(std::cmp::Ordering) -> bool) -> Value {
        let ord = if Self::promote(a, b) {
            a.as_f64()
                .partial_cmp(&b.as_f64())
                .unwrap_or(std::cmp::Ordering::Equal)
        } else {
            a.as_i64().cmp(&b.as_i64())
        };
        Value::I(f(ord) as i64)
    }

    /// `a < b` as 0/1.
    pub fn lt(a: Value, b: Value) -> Value {
        Self::cmp_val(a, b, |o| o == std::cmp::Ordering::Less)
    }

    /// `a <= b` as 0/1.
    pub fn le(a: Value, b: Value) -> Value {
        Self::cmp_val(a, b, |o| o != std::cmp::Ordering::Greater)
    }

    /// `a == b` as 0/1.
    pub fn eq_val(a: Value, b: Value) -> Value {
        Self::cmp_val(a, b, |o| o == std::cmp::Ordering::Equal)
    }

    /// Negation.
    pub fn neg(a: Value) -> Value {
        match a {
            Value::I(v) => Value::I(v.wrapping_neg()),
            Value::F(v) => Value::F(-v),
        }
    }

    /// Logical not (0/1).
    pub fn not(a: Value) -> Value {
        Value::I(!a.truthy() as i64)
    }

    /// Square root (promotes to float).
    pub fn sqrt(a: Value) -> Value {
        Value::F(a.as_f64().sqrt())
    }

    /// Absolute value.
    pub fn abs(a: Value) -> Value {
        match a {
            Value::I(v) => Value::I(v.wrapping_abs()),
            Value::F(v) => Value::F(v.abs()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::F(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_stays_integer() {
        assert_eq!(Value::add(Value::I(2), Value::I(3)), Value::I(5));
        assert_eq!(Value::mul(Value::I(4), Value::I(-2)), Value::I(-8));
        assert_eq!(Value::div(Value::I(7), Value::I(2)), Value::I(3));
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        assert_eq!(Value::add(Value::I(1), Value::F(0.5)), Value::F(1.5));
        assert_eq!(Value::mul(Value::F(2.0), Value::I(3)), Value::F(6.0));
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(Value::div(Value::I(5), Value::I(0)), Value::I(0));
        assert_eq!(Value::rem(Value::I(5), Value::I(0)), Value::I(0));
        assert!(Value::div(Value::F(1.0), Value::F(0.0))
            .as_f64()
            .is_infinite());
    }

    #[test]
    fn comparisons_yield_zero_one() {
        assert_eq!(Value::lt(Value::I(1), Value::I(2)), Value::I(1));
        assert_eq!(Value::lt(Value::I(2), Value::I(2)), Value::I(0));
        assert_eq!(Value::le(Value::F(2.0), Value::I(2)), Value::I(1));
        assert_eq!(Value::eq_val(Value::I(3), Value::F(3.0)), Value::I(1));
    }

    #[test]
    fn truthiness() {
        assert!(Value::I(-1).truthy());
        assert!(!Value::I(0).truthy());
        assert!(Value::F(0.1).truthy());
        assert!(!Value::F(0.0).truthy());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(Value::neg(Value::I(4)), Value::I(-4));
        assert_eq!(Value::not(Value::I(0)), Value::I(1));
        assert_eq!(Value::sqrt(Value::I(9)), Value::F(3.0));
        assert_eq!(Value::abs(Value::F(-2.5)), Value::F(2.5));
        assert_eq!(Value::min(Value::I(3), Value::I(1)), Value::I(1));
        assert_eq!(Value::max(Value::F(3.0), Value::F(1.0)), Value::F(3.0));
    }
}
