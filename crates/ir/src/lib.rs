//! # distda-ir
//!
//! The kernel intermediate representation the Dist-DA compiler consumes:
//! loop nests of statements over declared memory objects, with affine or
//! data-dependent (indirect) index expressions — the information the
//! paper's LLVM passes recover via SSA, scalar evolution and alias analysis
//! is explicit here (Section V).
//!
//! The crate also provides the functional reference interpreter
//! ([`interp`]) used to validate every accelerated run, and the dataflow
//! trace generator ([`trace`]) that drives the host out-of-order timing
//! model.
//!
//! ```
//! use distda_ir::prelude::*;
//!
//! let mut b = ProgramBuilder::new("sum");
//! let x = b.array_i64("x", 4);
//! let acc = b.scalar("acc", 0i64);
//! b.for_(0, 4, 1, |b, i| {
//!     b.set(acc, Expr::Scalar(acc) + Expr::load(x, i));
//! });
//! let prog = b.build();
//! let mut mem = Memory::for_program(&prog);
//! for (i, v) in mem.array_mut(x).iter_mut().enumerate() {
//!     *v = Value::I(i as i64);
//! }
//! let scalars = distda_ir::interp::run(&prog, &mut mem);
//! assert_eq!(scalars[0], Value::I(6));
//! ```

pub mod expr;
pub mod interp;
pub mod program;
pub mod trace;
pub mod value;

pub use expr::{ArrayId, BinOp, Expr, LoopVarId, ScalarId, UnOp};
pub use interp::Memory;
pub use program::{Loop, LoopId, Program, ProgramBuilder, Stmt};
pub use trace::{DynOp, Layout, OpKind, Trace, NO_DEP};
pub use value::Value;

/// Common imports for writing kernels.
pub mod prelude {
    pub use crate::expr::{ArrayId, Expr, ScalarId};
    pub use crate::interp::Memory;
    pub use crate::program::{Program, ProgramBuilder};
    pub use crate::value::Value;
}
