//! Programs: loop nests of statements over declared memory objects, plus
//! the builder API the workloads use.

use crate::expr::{ArrayId, Expr, LoopVarId, ScalarId};
use crate::value::Value;

/// Identifies a static loop in the program (assigned in build order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub usize);

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `array[idx] = value` (index in elements).
    Store(ArrayId, Expr, Expr),
    /// `scalar = value`.
    SetScalar(ScalarId, Expr),
    /// `if cond { then } else { other }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// A counted loop.
    Loop(Loop),
}

/// A counted loop: `for var in (start..end).step_by(step)`.
///
/// Bounds are expressions, so inner loops may read their bounds from memory
/// (the CSR pattern of the paper's Figure 5a).
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Static loop id.
    pub id: LoopId,
    /// Induction variable.
    pub var: LoopVarId,
    /// Inclusive start, evaluated at loop entry.
    pub start: Expr,
    /// Exclusive end, evaluated at loop entry.
    pub end: Expr,
    /// Step (may be negative; never zero).
    pub step: i64,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A declared memory object (application data structure).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Element type: `true` = f64, `false` = i64.
    pub is_float: bool,
    /// Length in elements (elements are 8 bytes).
    pub len: usize,
}

/// A declared scalar variable.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarDecl {
    /// Source-level name.
    pub name: String,
    /// Initial value.
    pub init: Value,
}

/// A complete kernel program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Kernel name (used in reports).
    pub name: String,
    /// Memory objects.
    pub arrays: Vec<ArrayDecl>,
    /// Scalars.
    pub scalars: Vec<ScalarDecl>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Total number of loops.
    pub loop_count: usize,
    /// Total number of loop variables.
    pub loop_var_count: usize,
}

impl Program {
    /// Bytes per element for every array.
    pub const ELEM_BYTES: u64 = 8;

    /// Visits every statement in the program, depth-first.
    pub fn visit_stmts(&self, f: &mut impl FnMut(&Stmt)) {
        fn walk(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::Loop(l) => walk(&l.body, f),
                    Stmt::If(_, t, e) => {
                        walk(t, f);
                        walk(e, f);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, f);
    }

    /// Finds a loop by id.
    pub fn find_loop(&self, id: LoopId) -> Option<&Loop> {
        let mut found = None;
        self.visit_stmts(&mut |s| {
            if let Stmt::Loop(l) = s {
                if l.id == id {
                    found = Some(l as *const Loop);
                }
            }
        });
        // SAFETY-free: re-borrow through the pointer would be unsound; walk
        // again instead for a clean reference.
        found.map(|ptr| {
            fn walk(stmts: &[Stmt], ptr: *const Loop) -> Option<&Loop> {
                for s in stmts {
                    if let Stmt::Loop(l) = s {
                        if std::ptr::eq(l, ptr) {
                            return Some(l);
                        }
                        if let Some(r) = walk(&l.body, ptr) {
                            return Some(r);
                        }
                    } else if let Stmt::If(_, t, e) = s {
                        if let Some(r) = walk(t, ptr).or_else(|| walk(e, ptr)) {
                            return Some(r);
                        }
                    }
                }
                None
            }
            walk(&self.body, ptr).expect("loop found above")
        })
    }

    /// Total bytes across all declared arrays.
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays
            .iter()
            .map(|a| a.len as u64 * Self::ELEM_BYTES)
            .sum()
    }
}

/// Incremental program builder.
///
/// # Examples
///
/// ```
/// use distda_ir::program::ProgramBuilder;
/// use distda_ir::expr::Expr;
///
/// let mut b = ProgramBuilder::new("axpy");
/// let x = b.array_f64("x", 16);
/// let y = b.array_f64("y", 16);
/// b.for_(0, 16, 1, |b, i| {
///     let v = Expr::cf(2.0) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
///     b.store(y, i, v);
/// });
/// let prog = b.build();
/// assert_eq!(prog.loop_count, 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<ScalarDecl>,
    frames: Vec<Vec<Stmt>>,
    loops: usize,
    loop_vars: usize,
}

impl ProgramBuilder {
    /// Starts building a program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            arrays: Vec::new(),
            scalars: Vec::new(),
            frames: vec![Vec::new()],
            loops: 0,
            loop_vars: 0,
        }
    }

    /// Declares an f64 array of `len` elements.
    pub fn array_f64(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            is_float: true,
            len,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Declares an i64 array of `len` elements.
    pub fn array_i64(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            is_float: false,
            len,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Declares a scalar with an initial value.
    pub fn scalar(&mut self, name: impl Into<String>, init: impl Into<Value>) -> ScalarId {
        self.scalars.push(ScalarDecl {
            name: name.into(),
            init: init.into(),
        });
        ScalarId(self.scalars.len() - 1)
    }

    fn top(&mut self) -> &mut Vec<Stmt> {
        self.frames.last_mut().expect("builder frame")
    }

    /// Appends `array[idx] = value`.
    pub fn store(&mut self, a: ArrayId, idx: impl Into<Expr>, value: impl Into<Expr>) {
        let s = Stmt::Store(a, idx.into(), value.into());
        self.top().push(s);
    }

    /// Appends `scalar = value`.
    pub fn set(&mut self, s: ScalarId, value: impl Into<Expr>) {
        let st = Stmt::SetScalar(s, value.into());
        self.top().push(st);
    }

    /// Appends a counted loop; the closure receives the induction variable
    /// as an expression.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn for_(
        &mut self,
        start: impl Into<Expr>,
        end: impl Into<Expr>,
        step: i64,
        f: impl FnOnce(&mut Self, Expr),
    ) {
        assert!(step != 0, "loop step must be nonzero");
        let var = LoopVarId(self.loop_vars);
        self.loop_vars += 1;
        let id = LoopId(self.loops);
        self.loops += 1;
        self.frames.push(Vec::new());
        f(self, Expr::LoopVar(var));
        let body = self.frames.pop().expect("pushed above");
        let l = Loop {
            id,
            var,
            start: start.into(),
            end: end.into(),
            step,
            body,
        };
        self.top().push(Stmt::Loop(l));
    }

    /// Appends an `if`/`else`.
    pub fn if_(
        &mut self,
        cond: impl Into<Expr>,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        self.frames.push(Vec::new());
        then_f(self);
        let then_b = self.frames.pop().expect("pushed above");
        self.frames.push(Vec::new());
        else_f(self);
        let else_b = self.frames.pop().expect("pushed above");
        let s = Stmt::If(cond.into(), then_b, else_b);
        self.top().push(s);
    }

    /// Appends an `if` with no else branch.
    pub fn when(&mut self, cond: impl Into<Expr>, then_f: impl FnOnce(&mut Self)) {
        self.if_(cond, then_f, |_| {});
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if called while a loop or branch is still open (builder
    /// misuse; cannot happen through the closure API).
    pub fn build(mut self) -> Program {
        assert_eq!(self.frames.len(), 1, "unclosed builder frame");
        Program {
            name: self.name,
            arrays: self.arrays,
            scalars: self.scalars,
            body: self.frames.pop().expect("checked above"),
            loop_count: self.loops,
            loop_var_count: self.loop_vars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_nests_loops() {
        let mut b = ProgramBuilder::new("nest");
        let a = b.array_f64("a", 4);
        b.for_(0, 2, 1, |b, i| {
            b.for_(0, 2, 1, |b, j| {
                b.store(a, i.clone() * Expr::c(2) + j, Expr::cf(1.0));
            });
        });
        let p = b.build();
        assert_eq!(p.loop_count, 2);
        let mut loops = 0;
        p.visit_stmts(&mut |s| {
            if matches!(s, Stmt::Loop(_)) {
                loops += 1;
            }
        });
        assert_eq!(loops, 2);
    }

    #[test]
    fn find_loop_locates_inner() {
        let mut b = ProgramBuilder::new("nest");
        let a = b.array_i64("a", 4);
        b.for_(0, 2, 1, |b, _| {
            b.for_(0, 2, 1, |b, j| {
                b.store(a, j, Expr::c(1));
            });
        });
        let p = b.build();
        let inner = p.find_loop(LoopId(1)).expect("inner loop");
        assert_eq!(inner.id, LoopId(1));
        assert_eq!(inner.body.len(), 1);
        assert!(p.find_loop(LoopId(7)).is_none());
    }

    #[test]
    fn footprint_counts_all_arrays() {
        let mut b = ProgramBuilder::new("fp");
        b.array_f64("a", 10);
        b.array_i64("b", 6);
        assert_eq!(b.build().footprint_bytes(), 16 * 8);
    }

    #[test]
    fn if_builder_produces_both_branches() {
        let mut b = ProgramBuilder::new("iffy");
        let s = b.scalar("s", 0i64);
        b.if_(
            Expr::c(1),
            |b| b.set(s, Expr::c(1)),
            |b| b.set(s, Expr::c(2)),
        );
        let p = b.build();
        match &p.body[0] {
            Stmt::If(_, t, e) => {
                assert_eq!(t.len(), 1);
                assert_eq!(e.len(), 1);
            }
            _ => panic!("expected if"),
        }
    }

    #[test]
    #[should_panic(expected = "step must be nonzero")]
    fn zero_step_rejected() {
        let mut b = ProgramBuilder::new("bad");
        b.for_(0, 1, 0, |_, _| {});
    }
}
