//! SD-VBS vision kernels: stereo disparity and feature tracking.

use crate::gen;
use crate::{Scale, Workload};
use distda_ir::prelude::*;
use std::sync::Arc;

/// Stereo disparity (SD-VBS `disparity`): per-shift SAD, horizontal
/// aggregation, and winner-take-all minimum — the multi-input, multi-object
/// pattern the paper's sub-computation partitioning targets.
pub fn disparity(s: &Scale) -> Workload {
    let n = s.img * s.img;
    let shifts = s.shifts as i64;
    let mut b = ProgramBuilder::new("disparity");
    let left = b.array_f64("left", n);
    let right = b.array_f64("right", n);
    let sad = b.array_f64("sad", n);
    let win = b.array_f64("win", n);
    let minsad = b.array_f64("minsad", n);
    let disp = b.array_f64("disp", n);

    b.for_(0, shifts, 1, |b, d| {
        // SAD at this shift.
        b.for_(0, n as i64, 1, |b, p| {
            let diff = Expr::load(left, p.clone()) - Expr::load(right, p.clone() - d.clone());
            b.store(sad, p, diff.abs());
        });
        // Horizontal 3-tap aggregation.
        b.for_(1, n as i64 - 1, 1, |b, p| {
            let acc = Expr::load(sad, p.clone() - Expr::c(1))
                + Expr::load(sad, p.clone())
                + Expr::load(sad, p.clone() + Expr::c(1));
            b.store(win, p, acc);
        });
        // Winner-take-all.
        b.for_(0, n as i64, 1, |b, p| {
            let better = Expr::load(win, p.clone()).lt(Expr::load(minsad, p.clone()));
            b.store(
                minsad,
                p.clone(),
                better
                    .clone()
                    .select(Expr::load(win, p.clone()), Expr::load(minsad, p.clone())),
            );
            b.store(
                disp,
                p.clone(),
                better.select(d.clone() * Expr::cf(1.0), Expr::load(disp, p)),
            );
        });
    });
    let prog = b.build();
    let (seed, img) = (s.seed, s.img);
    Workload {
        name: "dis".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            let l = gen::pixels(img * img, seed);
            let r = gen::pixels(img * img, seed + 1);
            mem.array_mut(left).copy_from_slice(&l);
            mem.array_mut(right).copy_from_slice(&r);
            for v in mem.array_mut(minsad) {
                *v = Value::F(1e30);
            }
        }),
    }
}

/// Feature tracking (SD-VBS `tracking`): image gradients, products, box
/// blur and Harris-style corner response.
pub fn tracking(s: &Scale) -> Workload {
    let w = s.img as i64;
    let n = s.img * s.img;
    let mut b = ProgramBuilder::new("tracking");
    let img = b.array_f64("img", n);
    let ix = b.array_f64("ix", n);
    let iy = b.array_f64("iy", n);
    let ixx = b.array_f64("ixx", n);
    let ixy = b.array_f64("ixy", n);
    let iyy = b.array_f64("iyy", n);
    let sxx = b.array_f64("sxx", n);
    let sxy = b.array_f64("sxy", n);
    let syy = b.array_f64("syy", n);
    let resp = b.array_f64("resp", n);

    // Gradients.
    b.for_(1, n as i64 - 1, 1, |b, p| {
        b.store(
            ix,
            p.clone(),
            (Expr::load(img, p.clone() + Expr::c(1)) - Expr::load(img, p - Expr::c(1)))
                * Expr::cf(0.5),
        );
    });
    b.for_(w, n as i64 - w, 1, |b, p| {
        b.store(
            iy,
            p.clone(),
            (Expr::load(img, p.clone() + Expr::c(w)) - Expr::load(img, p - Expr::c(w)))
                * Expr::cf(0.5),
        );
    });
    // Products (three stores, five objects: a wide DFG).
    b.for_(0, n as i64, 1, |b, p| {
        let gx = Expr::load(ix, p.clone());
        let gy = Expr::load(iy, p.clone());
        b.store(ixx, p.clone(), gx.clone() * gx.clone());
        b.store(ixy, p.clone(), gx * gy.clone());
        b.store(iyy, p, gy.clone() * gy);
    });
    // 3-tap box blur of each product.
    for (src, dst) in [(ixx, sxx), (ixy, sxy), (iyy, syy)] {
        b.for_(1, n as i64 - 1, 1, |b, p| {
            let acc = Expr::load(src, p.clone() - Expr::c(1))
                + Expr::load(src, p.clone())
                + Expr::load(src, p.clone() + Expr::c(1));
            b.store(dst, p, acc * Expr::cf(1.0 / 3.0));
        });
    }
    // Corner response: det - k*trace^2.
    b.for_(0, n as i64, 1, |b, p| {
        let a = Expr::load(sxx, p.clone());
        let c = Expr::load(syy, p.clone());
        let bq = Expr::load(sxy, p.clone());
        let trace = a.clone() + c.clone();
        let r = a * c - bq.clone() * bq - Expr::cf(0.04) * trace.clone() * trace;
        b.store(resp, p, r);
    });
    let prog = b.build();
    let (seed, side) = (s.seed, s.img);
    Workload {
        name: "tra".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            let px = gen::pixels(side * side, seed + 2);
            mem.array_mut(img).copy_from_slice(&px);
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disparity_picks_minimum_shift() {
        // With identical images, shift 0 has zero SAD: disp must be 0 in
        // the interior wherever ties resolve to the first strict improver.
        let s = Scale::tiny();
        let w = disparity(&s);
        let mem = w.reference();
        let disp = mem.array(ArrayId(5));
        let n = s.img * s.img;
        // Interior pixel count with disp in range.
        for (p, v) in disp.iter().enumerate().take(n - 1).skip(1) {
            let d = v.as_f64();
            assert!((0.0..s.shifts as f64).contains(&d), "disp[{p}] = {d}");
        }
    }

    #[test]
    fn tracking_response_is_finite_everywhere() {
        let w = tracking(&Scale::tiny());
        let mem = w.reference();
        for v in mem.array(ArrayId(9)) {
            assert!(v.as_f64().is_finite());
        }
    }

    #[test]
    fn tracking_gradient_matches_hand_computation() {
        let s = Scale::tiny();
        let w = tracking(&s);
        let mut input = Memory::for_program(&w.program);
        (w.init)(&mut input);
        let img: Vec<f64> = input.array(ArrayId(0)).iter().map(|v| v.as_f64()).collect();
        let mem = w.reference();
        let ix = mem.array(ArrayId(1));
        for p in 1..img.len() - 1 {
            let expect = 0.5 * (img[p + 1] - img[p - 1]);
            assert!((ix[p].as_f64() - expect).abs() < 1e-9);
        }
    }
}
