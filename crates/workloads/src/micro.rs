//! Micro workloads with a single top-level offloadable loop — the shape
//! required for multi-tenant co-scheduling (one prologue, one offloaded
//! loop, one epilogue per tenant). Sizes and constants are explicit
//! parameters so harnesses (validation sweeps, service smoke tests,
//! observability invariants) can draw them from their own seed streams.

use crate::{gen, Workload};
use distda_ir::prelude::*;
use std::sync::Arc;

/// Saxpy: `y[i] = a*x[i] + y[i]` with unit-interval inputs from `seed`.
pub fn saxpy(n: usize, a: f64, seed: u64) -> Workload {
    let mut b = ProgramBuilder::new("micro-saxpy");
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    b.for_(0, n as i64, 1, |b, i| {
        let v = Expr::cf(a) * Expr::load(x, i.clone()) + Expr::load(y, i.clone());
        b.store(y, i, v);
    });
    let prog = b.build();
    Workload {
        name: "micro-saxpy".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in gen::unit_floats(n, seed).into_iter().enumerate() {
                mem.array_mut(x)[k] = v;
            }
            for (k, v) in gen::unit_floats(n, seed + 1).into_iter().enumerate() {
                mem.array_mut(y)[k] = v;
            }
        }),
    }
}

/// Dot-product reduction: `out[0] = sum(x[i]*y[i])`.
pub fn dot(n: usize, seed: u64) -> Workload {
    let mut b = ProgramBuilder::new("micro-dot");
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    let out = b.array_f64("out", 1);
    let acc = b.scalar("acc", 0.0f64);
    b.for_(0, n as i64, 1, |b, i| {
        b.set(
            acc,
            Expr::Scalar(acc) + Expr::load(x, i.clone()) * Expr::load(y, i),
        );
    });
    b.store(out, Expr::c(0), Expr::Scalar(acc));
    let prog = b.build();
    Workload {
        name: "micro-dot".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in gen::unit_floats(n, seed).into_iter().enumerate() {
                mem.array_mut(x)[k] = v;
            }
            for (k, v) in gen::unit_floats(n, seed + 1).into_iter().enumerate() {
                mem.array_mut(y)[k] = v;
            }
        }),
    }
}

/// Indirect gather over a permutation cycle: `out[i] = data[idx[i]]`.
pub fn gather(n: usize, seed: u64) -> Workload {
    let mut b = ProgramBuilder::new("micro-gather");
    let idx = b.array_i64("idx", n);
    let data = b.array_f64("data", n);
    let out = b.array_f64("out", n);
    b.for_(0, n as i64, 1, |b, i| {
        let j = Expr::load(idx, i.clone());
        b.store(out, i, Expr::load(data, j));
    });
    let prog = b.build();
    Workload {
        name: "micro-gather".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in gen::permutation_cycle(n, seed).into_iter().enumerate() {
                mem.array_mut(idx)[k] = Value::I(v);
            }
            for (k, v) in gen::unit_floats(n, seed + 1).into_iter().enumerate() {
                mem.array_mut(data)[k] = v;
            }
        }),
    }
}

/// 3-point stencil: `out[i] = c0*a[i-1] + c1*a[i] + c2*a[i+1]`.
pub fn stencil3(n: usize, c: [f64; 3], seed: u64) -> Workload {
    let mut b = ProgramBuilder::new("micro-stencil3");
    let a = b.array_f64("a", n);
    let out = b.array_f64("out", n);
    b.for_(1, n as i64 - 1, 1, |b, i| {
        let v = Expr::cf(c[0]) * Expr::load(a, i.clone() - Expr::c(1))
            + Expr::cf(c[1]) * Expr::load(a, i.clone())
            + Expr::cf(c[2]) * Expr::load(a, i.clone() + Expr::c(1));
        b.store(out, i, v);
    });
    let prog = b.build();
    Workload {
        name: "micro-stencil3".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in gen::unit_floats(n, seed).into_iter().enumerate() {
                mem.array_mut(a)[k] = v;
            }
        }),
    }
}

/// All four micro kernels with sizes and constants drawn from `seed` via
/// the repo's own [`SplitMix64`](distda_sim::SplitMix64): the same seed
/// always reproduces the same kernels.
pub fn suite(seed: u64) -> Vec<Workload> {
    let mut r = distda_sim::SplitMix64::new(seed);
    let mut size = |lo: u64, hi: u64| (lo + r.below(hi - lo)) as usize;
    let saxpy_n = size(64, 512);
    let dot_n = size(64, 512);
    let gather_n = size(64, 512);
    let stencil_n = size(64, 512);
    let a = 0.5 + r.next_f64() * 4.0;
    let c = [r.next_f64(), r.next_f64(), r.next_f64()];
    vec![
        saxpy(saxpy_n, a, seed + 10),
        dot(dot_n, seed + 20),
        gather(gather_n, seed + 30),
        stencil3(stencil_n, c, seed + 40),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_suite_is_seed_deterministic() {
        let a = suite(7);
        let b = suite(7);
        assert_eq!(a.len(), 4);
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(
                format!("{:?}", wa.reference_exec().1),
                format!("{:?}", wb.reference_exec().1)
            );
        }
    }
}
