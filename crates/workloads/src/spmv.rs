//! Sparse matrix-vector multiplication — the Section VI-D control-flow
//! case study.
//!
//! [`spmv`] is the compiler-automated shape (Dist-DA-B): the host walks
//! rows and launches the short inner dot product per row, so offload
//! overhead dominates. [`spmv_flat`] is the user-annotated shape
//! (Dist-DA-BN/BNS): the loop nest is localized on the accelerators by
//! flattening over nonzeros with a row-index stream, amortizing one launch
//! over the whole matrix — the same pipelining across inner-loop
//! invocations the paper achieves with `cp_produce`d loop bounds
//! (Figure 5a).

use crate::gen;
use crate::{Scale, Workload};
use distda_ir::prelude::*;
use std::sync::Arc;

fn csr_inputs(s: &Scale) -> (Vec<i64>, Vec<i64>, Vec<Value>, Vec<Value>) {
    let (rp, col) = gen::csr_graph(s.nodes, s.edge_factor, s.seed + 110);
    let vals = gen::unit_floats(col.len(), s.seed + 111);
    let x = gen::unit_floats(s.nodes, s.seed + 112);
    (rp, col, vals, x)
}

/// Row-wise CSR SpMV (the automated Dist-DA-B configuration).
pub fn spmv(s: &Scale) -> Workload {
    let (rp, col, vals, xv) = csr_inputs(s);
    let n = s.nodes;
    let m = col.len();
    let mut b = ProgramBuilder::new("spmv");
    let ap = b.array_i64("ap", n + 1);
    let aj = b.array_i64("aj", m);
    let a = b.array_f64("a", m);
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);
    let acc = b.scalar("acc", 0.0f64);

    b.for_(0, n as i64, 1, |b, i| {
        b.set(acc, Expr::cf(0.0));
        let lo = Expr::load(ap, i.clone());
        let hi = Expr::load(ap, i.clone() + Expr::c(1));
        b.for_(lo, hi, 1, |b, e| {
            b.set(
                acc,
                Expr::Scalar(acc) + Expr::load(a, e.clone()) * Expr::load(x, Expr::load(aj, e)),
            );
        });
        b.store(y, i, Expr::Scalar(acc));
    });
    let prog = b.build();
    Workload {
        name: "spmv".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in rp.iter().enumerate() {
                mem.array_mut(ap)[k] = Value::I(*v);
            }
            for (k, v) in col.iter().enumerate() {
                mem.array_mut(aj)[k] = Value::I(*v);
            }
            mem.array_mut(a).copy_from_slice(&vals);
            mem.array_mut(x).copy_from_slice(&xv);
        }),
    }
}

/// Nonzero-flattened SpMV with a row-index stream (the annotated
/// Dist-DA-BN/BNS configurations): one offload launch covers the whole
/// matrix.
pub fn spmv_flat(s: &Scale) -> Workload {
    let (rp, col, vals, xv) = csr_inputs(s);
    let n = s.nodes;
    let m = col.len();
    // Expand row indices per nonzero.
    let mut rows = vec![0i64; m];
    for r in 0..n {
        for slot in &mut rows[rp[r] as usize..rp[r + 1] as usize] {
            *slot = r as i64;
        }
    }
    let mut b = ProgramBuilder::new("spmv-flat");
    let row = b.array_i64("row", m);
    let aj = b.array_i64("aj", m);
    let a = b.array_f64("a", m);
    let x = b.array_f64("x", n);
    let y = b.array_f64("y", n);

    b.for_(0, m as i64, 1, |b, e| {
        let r = Expr::load(row, e.clone());
        let contrib = Expr::load(a, e.clone()) * Expr::load(x, Expr::load(aj, e));
        b.store(y, r.clone(), Expr::load(y, r) + contrib);
    });
    let prog = b.build();
    Workload {
        name: "spmv-flat".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in rows.iter().enumerate() {
                mem.array_mut(row)[k] = Value::I(*v);
            }
            for (k, v) in col.iter().enumerate() {
                mem.array_mut(aj)[k] = Value::I(*v);
            }
            mem.array_mut(a).copy_from_slice(&vals);
            mem.array_mut(x).copy_from_slice(&xv);
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(s: &Scale) -> Vec<f64> {
        let (rp, col, vals, xv) = csr_inputs(s);
        let mut y = vec![0.0f64; s.nodes];
        for r in 0..s.nodes {
            for e in rp[r] as usize..rp[r + 1] as usize {
                y[r] += vals[e].as_f64() * xv[col[e] as usize].as_f64();
            }
        }
        y
    }

    #[test]
    fn spmv_matches_oracle() {
        let s = Scale::tiny();
        let expect = oracle(&s);
        let out = spmv(&s).reference();
        for (r, e) in expect.iter().enumerate() {
            assert!(
                (out.array(ArrayId(4))[r].as_f64() - e).abs() < 1e-9,
                "row {r}"
            );
        }
    }

    #[test]
    fn flat_spmv_computes_the_same_product() {
        let s = Scale::tiny();
        let expect = oracle(&s);
        let out = spmv_flat(&s).reference();
        for (r, e) in expect.iter().enumerate() {
            assert!(
                (out.array(ArrayId(4))[r].as_f64() - e).abs() < 1e-9,
                "row {r}"
            );
        }
    }
}
