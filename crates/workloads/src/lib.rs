//! # distda-workloads
//!
//! The paper's evaluation workloads (Table IV) re-implemented on the
//! kernel IR with deterministic synthetic input generators: disparity and
//! tracking (SD-VBS), fdtd-2d, cholesky, adi and seidel-2d (Polybench),
//! pathfinder and nw (Rodinia), bfs (MachSuite-style CSR), pagerank,
//! pointer-chase, and pca (CortexSuite) — plus the spmv and blocked-nw
//! case-study variants of Section VI-D.
//!
//! Each [`Workload`] bundles a program with its input initializer so any
//! configuration can be simulated with one call:
//!
//! ```
//! use distda_workloads::{Scale, pointer_chase};
//! use distda_system::{ConfigKind, RunConfig};
//!
//! let w = pointer_chase(&Scale::tiny());
//! let r = w.simulate(&RunConfig::named(ConfigKind::OoO));
//! assert!(r.validated);
//! ```

pub mod dp;
pub mod gen;
pub mod graph;
pub mod linalg;
pub mod micro;
pub mod spmv;
pub mod stencils;
pub mod vision;

use distda_ir::interp::{self, Memory};
use distda_ir::program::Program;
use distda_ir::value::Value;
use distda_system::{
    simulate_capture_with_ref, try_simulate_capture_with_ref, try_simulate_with_policy,
    CheckPolicy, RunConfig, RunResult, SimError,
};
use std::sync::{Arc, OnceLock};

pub use dp::{nw, nw_blocked, pathfinder};
pub use graph::{bfs, pagerank, pointer_chase};
pub use linalg::{cholesky, pca};
pub use spmv::{spmv, spmv_flat};
pub use stencils::{adi, fdtd_2d, seidel_2d};
pub use vision::{disparity, tracking};

/// Input scale parameters for the whole suite. Defaults are reduced from
/// the paper (Table IV) so a full sweep finishes in minutes; every
/// configuration sees the same inputs, so normalized results keep their
/// shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Image side for disparity/tracking.
    pub img: usize,
    /// Disparity shift count.
    pub shifts: usize,
    /// Stencil grid side (fdtd/adi/seidel).
    pub grid: usize,
    /// Stencil time steps.
    pub steps: usize,
    /// Matrix dimension (cholesky) / pca feature count.
    pub mat: usize,
    /// Pathfinder/pca row count.
    pub rows: usize,
    /// Pathfinder column count.
    pub cols: usize,
    /// nw sequence length.
    pub seq: usize,
    /// Graph node count (bfs/pagerank/spmv rows).
    pub nodes: usize,
    /// Average edges per node.
    pub edge_factor: usize,
    /// Pointer-chase hops.
    pub chase: usize,
    /// Pagerank/pr iterations.
    pub iters: usize,
    /// RNG seed for input generation.
    pub seed: u64,
}

impl Scale {
    /// Smallest inputs: unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            img: 12,
            shifts: 4,
            grid: 16,
            steps: 2,
            mat: 12,
            rows: 8,
            cols: 48,
            seq: 24,
            nodes: 96,
            edge_factor: 4,
            chase: 512,
            iters: 2,
            seed: 0xD15C0,
        }
    }

    /// Default evaluation inputs for regenerating the paper's figures.
    /// Working sets exceed the (scaled) L2 and pressure the LLC, matching
    /// the paper's working-set-to-cache ratios.
    pub fn eval() -> Self {
        Self {
            img: 48,
            shifts: 8,
            grid: 96,
            steps: 3,
            mat: 72,
            rows: 64,
            cols: 512,
            seq: 96,
            nodes: 2048,
            edge_factor: 8,
            chase: 20_000,
            iters: 3,
            seed: 0xD15C0,
        }
    }

    /// Larger stencil grids for the working-set sensitivity sweep.
    pub fn big_grid(grid: usize) -> Self {
        Self {
            grid,
            ..Self::eval()
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::eval()
    }
}

/// A runnable benchmark: program plus deterministic input initializer.
#[derive(Clone)]
pub struct Workload {
    /// Short name (paper abbreviation).
    pub name: String,
    /// The kernel program.
    pub program: Program,
    /// Installs inputs into a fresh memory image.
    pub init: Arc<dyn Fn(&mut Memory) + Send + Sync>,
    /// Reference execution (final memory image + scalars), interpreted
    /// once on first use and shared by every configuration this workload
    /// is simulated under — the interpreter is deterministic, so caching
    /// cannot change any result.
    pub ref_cache: Arc<OnceLock<(Memory, Vec<Value>)>>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("arrays", &self.program.arrays.len())
            .finish()
    }
}

impl Workload {
    /// Simulates this workload under a configuration, validating against
    /// the (cached) reference execution.
    pub fn simulate(&self, cfg: &RunConfig) -> RunResult {
        simulate_capture_with_ref(&self.program, &*self.init, cfg, Some(self.reference_exec())).0
    }

    /// Fallible [`Workload::simulate`]: deadlocks, invariant violations and
    /// invalid configurations come back as [`SimError`] so a sweep can
    /// report one failing cell and keep going.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on any simulation failure.
    pub fn try_simulate(&self, cfg: &RunConfig) -> Result<RunResult, SimError> {
        try_simulate_capture_with_ref(&self.program, &*self.init, cfg, Some(self.reference_exec()))
            .map(|out| out.0)
    }

    /// [`Workload::try_simulate`] with an explicit skip-ahead override and
    /// [`CheckPolicy`] — the differential-validation entry point: under
    /// [`CheckPolicy::full`] a golden-model mismatch or conservation
    /// violation is a typed error, not a flag.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on any simulation failure, including (under
    /// `policy.strict_validate`) golden-model mismatches.
    pub fn try_simulate_checked(
        &self,
        cfg: &RunConfig,
        skip: Option<bool>,
        policy: CheckPolicy,
    ) -> Result<RunResult, SimError> {
        try_simulate_with_policy(
            &self.program,
            &*self.init,
            cfg,
            skip,
            Some(self.reference_exec()),
            policy,
        )
        .map(|out| out.0)
    }

    /// [`Workload::try_simulate`] with a scheduler self-profiler attached:
    /// the observability entry point measuring where host time goes inside
    /// the run. Profiling never perturbs the returned [`RunResult`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on any simulation failure.
    pub fn try_simulate_profiled(
        &self,
        cfg: &RunConfig,
        profiler: &distda_sim::Profiler,
    ) -> Result<RunResult, SimError> {
        distda_system::try_simulate_profiled(
            &self.program,
            &*self.init,
            cfg,
            Some(self.reference_exec()),
            profiler,
        )
    }

    /// [`Workload::try_simulate`] with an explicit explain
    /// [`Sampler`](distda_sim::Sampler) attached: the causal-attribution
    /// entry point. The returned report carries the `explain.*` keys
    /// (ranked causal tree, exact tick accounting) and the `skip`
    /// override lets determinism tests demand byte-identical trees with
    /// skip-ahead on and off.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on any simulation failure, including
    /// explain accounting violations under a sanitizing policy.
    pub fn try_simulate_explained(
        &self,
        cfg: &RunConfig,
        skip: Option<bool>,
        sampler: &distda_sim::Sampler,
    ) -> Result<(RunResult, Option<distda_explain::Explanation>), SimError> {
        distda_system::try_simulate_explained(
            &self.program,
            &*self.init,
            cfg,
            skip,
            Some(self.reference_exec()),
            sampler,
        )
    }

    /// The cached reference execution: final memory image + scalar values
    /// from the interpreter, computed on first use.
    pub fn reference_exec(&self) -> &(Memory, Vec<Value>) {
        self.ref_cache.get_or_init(|| {
            let mut mem = Memory::for_program(&self.program);
            (self.init)(&mut mem);
            let scalars = interp::run(&self.program, &mut mem);
            (mem, scalars)
        })
    }

    /// Runs the reference interpreter, returning the final memory image.
    pub fn reference(&self) -> Memory {
        self.reference_exec().0.clone()
    }
}

/// The twelve-benchmark suite in the paper's presentation order.
pub fn suite(scale: &Scale) -> Vec<Workload> {
    vec![
        disparity(scale),
        tracking(scale),
        fdtd_2d(scale),
        cholesky(scale),
        adi(scale),
        seidel_2d(scale),
        pathfinder(scale),
        nw(scale),
        bfs(scale),
        pagerank(scale),
        pointer_chase(scale),
        pca(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_distinct_workloads() {
        let s = suite(&Scale::tiny());
        assert_eq!(s.len(), 12);
        let mut names: Vec<&str> = s.iter().map(|w| w.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn every_workload_interprets_without_panicking() {
        for w in suite(&Scale::tiny()) {
            let _ = w.reference();
        }
    }
}
