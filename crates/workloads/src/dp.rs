//! Rodinia dynamic-programming kernels: pathfinder and Needleman-Wunsch.

use crate::gen;
use crate::{Scale, Workload};
use distda_ir::prelude::*;
use std::sync::Arc;

/// Grid path cost minimization (Rodinia `pathfinder`): per-row DP with a
/// three-way min over the previous row; edges handled on the host.
pub fn pathfinder(s: &Scale) -> Workload {
    let (rows, cols) = (s.rows as i64, s.cols as i64);
    let mut b = ProgramBuilder::new("pathfinder");
    let wall = b.array_f64("wall", (rows * cols) as usize);
    let src = b.array_f64("src", cols as usize);
    let dst = b.array_f64("dst", cols as usize);

    b.for_(0, rows, 1, |b, i| {
        // Interior columns: offloadable streams.
        b.for_(1, cols - 1, 1, |b, j| {
            let best = Expr::load(src, j.clone() - Expr::c(1))
                .min(Expr::load(src, j.clone()))
                .min(Expr::load(src, j.clone() + Expr::c(1)));
            b.store(
                dst,
                j.clone(),
                Expr::load(wall, i.clone() * Expr::c(cols) + j) + best,
            );
        });
        // Host edges.
        b.store(
            dst,
            Expr::c(0),
            Expr::load(wall, i.clone() * Expr::c(cols))
                + Expr::load(src, Expr::c(0)).min(Expr::load(src, Expr::c(1))),
        );
        b.store(
            dst,
            Expr::c(cols - 1),
            Expr::load(wall, i.clone() * Expr::c(cols) + Expr::c(cols - 1))
                + Expr::load(src, Expr::c(cols - 1)).min(Expr::load(src, Expr::c(cols - 2))),
        );
        // Roll src <- dst.
        b.for_(0, cols, 1, |b, j| {
            b.store(src, j.clone(), Expr::load(dst, j));
        });
    });
    let prog = b.build();
    let (seed, r_, c_) = (s.seed, s.rows, s.cols);
    Workload {
        name: "pf".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            mem.array_mut(wall)
                .copy_from_slice(&gen::pixels(r_ * c_, seed + 60));
            for v in mem.array_mut(src) {
                *v = Value::F(0.0);
            }
        }),
    }
}

/// Needleman-Wunsch sequence alignment (Rodinia `nw`) with full-row inner
/// loops.
pub fn nw(s: &Scale) -> Workload {
    nw_blocked(s, s.seq)
}

/// Blocked Needleman-Wunsch: inner loops process `block` columns at a
/// time. Small blocks model the Dist-DA-B case study configuration (launch
/// overhead per short inner loop); `block == seq` is the localized
/// loop-nest (BN) shape.
pub fn nw_blocked(s: &Scale, block: usize) -> Workload {
    let n = s.seq as i64 + 1;
    let block = block.max(1) as i64;
    let mut b = ProgramBuilder::new(if block == s.seq as i64 {
        "nw".to_string()
    } else {
        format!("nw-b{block}")
    });
    let score = b.array_f64("score", (n * n) as usize);
    let seq1 = b.array_i64("seq1", n as usize);
    let seq2 = b.array_i64("seq2", n as usize);
    let penalty = 1.0f64;

    b.for_(1, n, 1, |b, i| {
        b.for_(0, (n - 1).div_euclid(block) + 1, 1, |b, blk| {
            let lo = (blk.clone() * Expr::c(block) + Expr::c(1)).min(Expr::c(n));
            let hi = ((blk + Expr::c(1)) * Expr::c(block) + Expr::c(1)).min(Expr::c(n));
            b.for_(lo, hi, 1, |b, j| {
                let matched = Expr::load(seq1, i.clone()).eq_(Expr::load(seq2, j.clone()));
                let sim = matched.select(Expr::cf(1.0), Expr::cf(-1.0));
                let diag = Expr::load(
                    score,
                    (i.clone() - Expr::c(1)) * Expr::c(n) + j.clone() - Expr::c(1),
                ) + sim;
                let up = Expr::load(score, (i.clone() - Expr::c(1)) * Expr::c(n) + j.clone())
                    - Expr::cf(penalty);
                let left = Expr::load(score, i.clone() * Expr::c(n) + j.clone() - Expr::c(1))
                    - Expr::cf(penalty);
                b.store(score, i.clone() * Expr::c(n) + j, diag.max(up).max(left));
            });
        });
    });
    let prog = b.build();
    let (seed, len) = (s.seed, s.seq);
    Workload {
        name: "nw".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            let mut r = distda_sim::SplitMix64::new(seed + 70);
            let n = len + 1;
            for k in 1..n {
                mem.array_mut(seq1)[k] = Value::I(r.below(4) as i64);
                mem.array_mut(seq2)[k] = Value::I(r.below(4) as i64);
            }
            // Boundary penalties.
            for k in 0..n {
                mem.array_mut(score)[k] = Value::F(-(k as f64));
                mem.array_mut(score)[k * n] = Value::F(-(k as f64));
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain-Rust pathfinder oracle.
    fn pathfinder_oracle(wall: &[f64], rows: usize, cols: usize) -> Vec<f64> {
        let mut src = vec![0.0f64; cols];
        let mut dst = vec![0.0f64; cols];
        for i in 0..rows {
            for j in 0..cols {
                let mut best = src[j];
                if j > 0 {
                    best = best.min(src[j - 1]);
                }
                if j + 1 < cols {
                    best = best.min(src[j + 1]);
                }
                dst[j] = wall[i * cols + j] + best;
            }
            src.copy_from_slice(&dst);
        }
        src
    }

    #[test]
    fn pathfinder_matches_oracle() {
        let s = Scale::tiny();
        let w = pathfinder(&s);
        let mut input = Memory::for_program(&w.program);
        (w.init)(&mut input);
        let wall: Vec<f64> = input.array(ArrayId(0)).iter().map(|v| v.as_f64()).collect();
        let expect = pathfinder_oracle(&wall, s.rows, s.cols);
        let got = w.reference();
        for (j, e) in expect.iter().enumerate() {
            assert!(
                (got.array(ArrayId(1))[j].as_f64() - e).abs() < 1e-9,
                "col {j}"
            );
        }
    }

    /// Plain-Rust NW oracle.
    fn nw_oracle(s1: &[i64], s2: &[i64], n: usize) -> Vec<f64> {
        let mut score = vec![0.0f64; n * n];
        for k in 0..n {
            score[k] = -(k as f64);
            score[k * n] = -(k as f64);
        }
        for i in 1..n {
            for j in 1..n {
                let sim = if s1[i] == s2[j] { 1.0 } else { -1.0 };
                score[i * n + j] = (score[(i - 1) * n + j - 1] + sim)
                    .max(score[(i - 1) * n + j] - 1.0)
                    .max(score[i * n + j - 1] - 1.0);
            }
        }
        score
    }

    #[test]
    fn nw_matches_oracle() {
        let s = Scale::tiny();
        let w = nw(&s);
        let mut input = Memory::for_program(&w.program);
        (w.init)(&mut input);
        let n = s.seq + 1;
        let s1: Vec<i64> = input.array(ArrayId(1)).iter().map(|v| v.as_i64()).collect();
        let s2: Vec<i64> = input.array(ArrayId(2)).iter().map(|v| v.as_i64()).collect();
        let expect = nw_oracle(&s1, &s2, n);
        let got = w.reference();
        for (k, e) in expect.iter().enumerate() {
            assert!(
                (got.array(ArrayId(0))[k].as_f64() - e).abs() < 1e-9,
                "cell {k}"
            );
        }
    }

    #[test]
    fn blocked_nw_computes_identical_scores() {
        let s = Scale::tiny();
        let full = nw(&s).reference();
        let blocked = nw_blocked(&s, 4).reference();
        assert_eq!(full.array(ArrayId(0)), blocked.array(ArrayId(0)));
    }
}
