//! Deterministic synthetic input generators.
//!
//! Substitutes for the paper's image/matrix datasets: seeded pseudo-random
//! inputs with the same structural properties (pixel ranges, SPD matrices,
//! CSR graphs with the stated edge factors, permutation chains).

use distda_ir::value::Value;
use distda_sim::SplitMix64;

/// Pixel-like values in `[0, 256)`.
pub fn pixels(n: usize, seed: u64) -> Vec<Value> {
    let mut r = SplitMix64::new(seed);
    (0..n).map(|_| Value::F((r.below(256)) as f64)).collect()
}

/// Uniform floats in `[0, 1)`.
pub fn unit_floats(n: usize, seed: u64) -> Vec<Value> {
    let mut r = SplitMix64::new(seed);
    (0..n).map(|_| Value::F(r.next_f64())).collect()
}

/// A symmetric positive-definite `n x n` matrix (row-major): `M = B*B^T + n*I`.
pub fn spd_matrix(n: usize, seed: u64) -> Vec<Value> {
    let mut r = SplitMix64::new(seed);
    let b: Vec<f64> = (0..n * n).map(|_| r.next_f64()).collect();
    let mut m = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += b[i * n + k] * b[j * n + k];
            }
            m[i * n + j] = acc + if i == j { n as f64 } else { 0.0 };
        }
    }
    m.into_iter().map(Value::F).collect()
}

/// A CSR adjacency: returns `(row_ptr, col_idx)` with `nodes + 1` row
/// pointers. Deterministic; every node gets `~edge_factor` out-edges.
pub fn csr_graph(nodes: usize, edge_factor: usize, seed: u64) -> (Vec<i64>, Vec<i64>) {
    let mut r = SplitMix64::new(seed);
    let mut row_ptr = Vec::with_capacity(nodes + 1);
    let mut col = Vec::new();
    row_ptr.push(0i64);
    for _ in 0..nodes {
        let deg = 1 + r.below(edge_factor.max(1) as u64 * 2 - 1) as usize;
        let mut targets: Vec<i64> = (0..deg).map(|_| r.below(nodes as u64) as i64).collect();
        targets.sort_unstable();
        targets.dedup();
        col.extend_from_slice(&targets);
        row_ptr.push(col.len() as i64);
    }
    (row_ptr, col)
}

/// A single-cycle permutation over `0..n` (pointer-chase chain).
pub fn permutation_cycle(n: usize, seed: u64) -> Vec<i64> {
    let mut r = SplitMix64::new(seed);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = r.below(i as u64 + 1) as usize;
        order.swap(i, j);
    }
    let mut next = vec![0i64; n];
    for w in 0..n {
        next[order[w]] = order[(w + 1) % n] as i64;
    }
    next
}

/// BFS distances from `src` over a CSR graph (reference oracle); `-1` =
/// unreachable. Also returns the eccentricity (max finite distance).
pub fn bfs_reference(row_ptr: &[i64], col: &[i64], src: usize) -> (Vec<i64>, usize) {
    let n = row_ptr.len() - 1;
    let mut dist = vec![-1i64; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    let mut ecc = 0;
    while let Some(u) = queue.pop_front() {
        for &c in &col[row_ptr[u] as usize..row_ptr[u + 1] as usize] {
            let v = c as usize;
            if dist[v] < 0 {
                dist[v] = dist[u] + 1;
                ecc = ecc.max(dist[v] as usize);
                queue.push_back(v);
            }
        }
    }
    (dist, ecc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixels_in_range_and_deterministic() {
        let a = pixels(100, 7);
        let b = pixels(100, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (0.0..256.0).contains(&v.as_f64())));
    }

    #[test]
    fn spd_matrix_is_symmetric_with_dominant_diagonal() {
        let n = 8;
        let m = spd_matrix(n, 3);
        for i in 0..n {
            for j in 0..n {
                assert!((m[i * n + j].as_f64() - m[j * n + i].as_f64()).abs() < 1e-12);
            }
            assert!(m[i * n + i].as_f64() > n as f64 * 0.9);
        }
    }

    #[test]
    fn csr_graph_is_well_formed() {
        let (rp, col) = csr_graph(50, 4, 11);
        assert_eq!(rp.len(), 51);
        assert_eq!(*rp.last().unwrap() as usize, col.len());
        assert!(rp.windows(2).all(|w| w[0] <= w[1]));
        assert!(col.iter().all(|&c| (0..50).contains(&c)));
    }

    #[test]
    fn permutation_cycle_visits_everything() {
        let n = 64;
        let next = permutation_cycle(n, 9);
        let mut seen = vec![false; n];
        let mut p = 0usize;
        for _ in 0..n {
            assert!(!seen[p], "cycle shorter than n");
            seen[p] = true;
            p = next[p] as usize;
        }
        assert_eq!(p, 0, "must return to start");
    }

    #[test]
    fn bfs_reference_matches_hand_graph() {
        // 0 -> 1 -> 2, 0 -> 2
        let rp = vec![0, 2, 3, 3];
        let col = vec![1, 2, 2];
        let (d, ecc) = bfs_reference(&rp, &col, 0);
        assert_eq!(d, vec![0, 1, 1]);
        assert_eq!(ecc, 1);
    }
}
