//! Polybench stencils: fdtd-2d, adi and seidel-2d.

use crate::gen;
use crate::{Scale, Workload};
use distda_ir::prelude::*;
use std::sync::Arc;

fn at(i: Expr, j: Expr, n: i64) -> Expr {
    i * Expr::c(n) + j
}

/// 2-D finite-difference time domain (Polybench `fdtd-2d`): three coupled
/// field sweeps per time step.
pub fn fdtd_2d(s: &Scale) -> Workload {
    let n = s.grid as i64;
    let cells = s.grid * s.grid;
    let mut b = ProgramBuilder::new("fdtd-2d");
    let ex = b.array_f64("ex", cells);
    let ey = b.array_f64("ey", cells);
    let hz = b.array_f64("hz", cells);

    b.for_(0, s.steps as i64, 1, |b, t| {
        b.for_(0, n, 1, |b, j| {
            b.store(ey, j, t.clone() * Expr::cf(1.0));
        });
        b.for_(1, n, 1, |b, i| {
            b.for_(0, n, 1, |b, j| {
                let v = Expr::load(ey, at(i.clone(), j.clone(), n))
                    - Expr::cf(0.5)
                        * (Expr::load(hz, at(i.clone(), j.clone(), n))
                            - Expr::load(hz, at(i.clone() - Expr::c(1), j.clone(), n)));
                b.store(ey, at(i.clone(), j, n), v);
            });
        });
        b.for_(0, n, 1, |b, i| {
            b.for_(1, n, 1, |b, j| {
                let v = Expr::load(ex, at(i.clone(), j.clone(), n))
                    - Expr::cf(0.5)
                        * (Expr::load(hz, at(i.clone(), j.clone(), n))
                            - Expr::load(hz, at(i.clone(), j.clone() - Expr::c(1), n)));
                b.store(ex, at(i.clone(), j, n), v);
            });
        });
        b.for_(0, n - 1, 1, |b, i| {
            b.for_(0, n - 1, 1, |b, j| {
                let v = Expr::load(hz, at(i.clone(), j.clone(), n))
                    - Expr::cf(0.7)
                        * (Expr::load(ex, at(i.clone(), j.clone() + Expr::c(1), n))
                            - Expr::load(ex, at(i.clone(), j.clone(), n))
                            + Expr::load(ey, at(i.clone() + Expr::c(1), j.clone(), n))
                            - Expr::load(ey, at(i.clone(), j.clone(), n)));
                b.store(hz, at(i.clone(), j, n), v);
            });
        });
    });
    let prog = b.build();
    let (seed, cells_) = (s.seed, cells);
    Workload {
        name: "fdt".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            mem.array_mut(ex)
                .copy_from_slice(&gen::unit_floats(cells_, seed + 10));
            mem.array_mut(ey)
                .copy_from_slice(&gen::unit_floats(cells_, seed + 11));
            mem.array_mut(hz)
                .copy_from_slice(&gen::unit_floats(cells_, seed + 12));
        }),
    }
}

/// Alternating-direction implicit sweeps (Polybench `adi`): a row sweep
/// with a carried recurrence, then a column sweep with stride-N accesses —
/// the column-major traversal the paper calls out.
pub fn adi(s: &Scale) -> Workload {
    let n = s.grid as i64;
    let cells = s.grid * s.grid;
    let mut b = ProgramBuilder::new("adi");
    let x = b.array_f64("x", cells);
    let a = b.array_f64("a", cells);
    let bm = b.array_f64("b", cells);

    b.for_(0, s.steps as i64, 1, |b, _t| {
        // Row sweep: loop-carried along j.
        b.for_(0, n, 1, |b, i| {
            b.for_(1, n, 1, |b, j| {
                let v = Expr::load(x, at(i.clone(), j.clone(), n))
                    - Expr::load(x, at(i.clone(), j.clone() - Expr::c(1), n))
                        * Expr::load(a, at(i.clone(), j.clone(), n))
                        / Expr::load(bm, at(i.clone(), j.clone() - Expr::c(1), n));
                b.store(x, at(i.clone(), j, n), v);
            });
        });
        // Column sweep: inner loop walks a column (stride N).
        b.for_(0, n, 1, |b, j| {
            b.for_(1, n, 1, |b, i| {
                let v = Expr::load(x, at(i.clone(), j.clone(), n))
                    - Expr::load(x, at(i.clone() - Expr::c(1), j.clone(), n))
                        * Expr::load(a, at(i.clone(), j.clone(), n))
                        / Expr::load(bm, at(i.clone() - Expr::c(1), j.clone(), n));
                b.store(x, at(i, j.clone(), n), v);
            });
        });
    });
    let prog = b.build();
    let (seed, cells_) = (s.seed, cells);
    Workload {
        name: "adi".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            mem.array_mut(x)
                .copy_from_slice(&gen::unit_floats(cells_, seed + 20));
            // Keep divisors away from zero.
            for (k, v) in mem.array_mut(a).iter_mut().enumerate() {
                *v = Value::F(0.1 + ((k % 7) as f64) * 0.05);
            }
            for v in mem.array_mut(bm).iter_mut() {
                *v = Value::F(2.0);
            }
        }),
    }
}

/// Gauss-Seidel 9-point in-place smoothing (Polybench `seidel-2d`):
/// arithmetic-heavy and pipelinable (reads values written this sweep).
pub fn seidel_2d(s: &Scale) -> Workload {
    let n = s.grid as i64;
    let cells = s.grid * s.grid;
    let mut b = ProgramBuilder::new("seidel-2d");
    let a = b.array_f64("A", cells);
    b.for_(0, s.steps as i64, 1, |b, _t| {
        b.for_(1, n - 1, 1, |b, i| {
            b.for_(1, n - 1, 1, |b, j| {
                let mut acc = Expr::cf(0.0);
                for di in -1..=1i64 {
                    for dj in -1..=1i64 {
                        acc = acc
                            + Expr::load(
                                a,
                                at(i.clone() + Expr::c(di), j.clone() + Expr::c(dj), n),
                            );
                    }
                }
                b.store(a, at(i.clone(), j, n), acc / Expr::cf(9.0));
            });
        });
    });
    let prog = b.build();
    let (seed, cells_) = (s.seed, cells);
    Workload {
        name: "sei".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            mem.array_mut(a)
                .copy_from_slice(&gen::unit_floats(cells_, seed + 30));
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seidel_smooths_toward_mean() {
        let s = Scale::tiny();
        let w = seidel_2d(&s);
        let mut before = Memory::for_program(&w.program);
        (w.init)(&mut before);
        let after = w.reference();
        let variance = |m: &Memory| {
            let vals: Vec<f64> = m.array(ArrayId(0)).iter().map(|v| v.as_f64()).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64
        };
        assert!(
            variance(&after) < variance(&before),
            "smoothing must reduce variance"
        );
    }

    #[test]
    fn adi_row_sweep_matches_hand_reference_one_row() {
        let s = Scale::tiny();
        let w = adi(&s);
        let mut input = Memory::for_program(&w.program);
        (w.init)(&mut input);
        // Replicate one time-step row sweep + column sweep in plain Rust.
        let n = s.grid;
        let mut x: Vec<f64> = input.array(ArrayId(0)).iter().map(|v| v.as_f64()).collect();
        let a: Vec<f64> = input.array(ArrayId(1)).iter().map(|v| v.as_f64()).collect();
        let bm: Vec<f64> = input.array(ArrayId(2)).iter().map(|v| v.as_f64()).collect();
        for _t in 0..s.steps {
            for i in 0..n {
                for j in 1..n {
                    x[i * n + j] -= x[i * n + j - 1] * a[i * n + j] / bm[i * n + j - 1];
                }
            }
            for j in 0..n {
                for i in 1..n {
                    x[i * n + j] -= x[(i - 1) * n + j] * a[i * n + j] / bm[(i - 1) * n + j];
                }
            }
        }
        let got = w.reference();
        for (k, v) in got.array(ArrayId(0)).iter().enumerate() {
            assert!((v.as_f64() - x[k]).abs() < 1e-9, "x[{k}]");
        }
    }

    #[test]
    fn fdtd_boundary_row_tracks_time_step() {
        let s = Scale::tiny();
        let w = fdtd_2d(&s);
        let mem = w.reference();
        let ey = mem.array(ArrayId(1));
        // After the final step, before the ey update overwrote rows > 0,
        // row 0 was set to t = steps-1.
        for v in ey.iter().take(s.grid) {
            assert_eq!(v.as_f64(), (s.steps - 1) as f64);
        }
    }
}
