//! Dense linear algebra / data mining: cholesky (Polybench) and pca
//! (CortexSuite).

use crate::gen;
use crate::{Scale, Workload};
use distda_ir::prelude::*;
use std::sync::Arc;

/// Cholesky factorization (Polybench): triangular loop nest whose inner
/// dot-product reductions stream two rows of the same matrix — the
/// multi-stream-reduction-with-reuse pattern the paper discusses.
pub fn cholesky(s: &Scale) -> Workload {
    let n = s.mat as i64;
    let cells = s.mat * s.mat;
    let mut b = ProgramBuilder::new("cholesky");
    let a = b.array_f64("A", cells);
    let acc = b.scalar("acc", 0.0f64);

    b.for_(0, n, 1, |b, i| {
        b.for_(0, i.clone(), 1, |b, j| {
            b.set(acc, Expr::cf(0.0));
            b.for_(0, j.clone(), 1, |b, k| {
                b.set(
                    acc,
                    Expr::Scalar(acc)
                        + Expr::load(a, i.clone() * Expr::c(n) + k.clone())
                            * Expr::load(a, j.clone() * Expr::c(n) + k),
                );
            });
            let v = (Expr::load(a, i.clone() * Expr::c(n) + j.clone()) - Expr::Scalar(acc))
                / Expr::load(a, j.clone() * Expr::c(n) + j.clone());
            b.store(a, i.clone() * Expr::c(n) + j, v);
        });
        b.set(acc, Expr::cf(0.0));
        b.for_(0, i.clone(), 1, |b, k| {
            let l = Expr::load(a, i.clone() * Expr::c(n) + k);
            b.set(acc, Expr::Scalar(acc) + l.clone() * l);
        });
        b.store(
            a,
            i.clone() * Expr::c(n) + i.clone(),
            (Expr::load(a, i.clone() * Expr::c(n) + i.clone()) - Expr::Scalar(acc)).sqrt(),
        );
    });
    let prog = b.build();
    let (seed, dim) = (s.seed, s.mat);
    Workload {
        name: "cho".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            mem.array_mut(a)
                .copy_from_slice(&gen::spd_matrix(dim, seed + 40));
        }),
    }
}

/// Principal component analysis preprocessing (CortexSuite `pca`): column
/// means then a covariance matrix — every inner loop traverses columns of
/// a row-major matrix (stride = column count), the access pattern the
/// paper singles out for `pca`.
pub fn pca(s: &Scale) -> Workload {
    let r = (s.rows * 2) as i64; // observation count
    let c = s.mat as i64; // feature count
    let cells = (r * c) as usize;
    let mut b = ProgramBuilder::new("pca");
    let data = b.array_f64("data", cells);
    let mean = b.array_f64("mean", c as usize);
    let cov = b.array_f64("cov", (c * c) as usize);
    let acc = b.scalar("acc", 0.0f64);

    // Column means (stride-c streams).
    b.for_(0, c, 1, |b, j| {
        b.set(acc, Expr::cf(0.0));
        b.for_(0, r, 1, |b, k| {
            b.set(
                acc,
                Expr::Scalar(acc) + Expr::load(data, k * Expr::c(c) + j.clone()),
            );
        });
        b.store(mean, j, Expr::Scalar(acc) / Expr::cf(r as f64));
    });
    // Covariance (two stride-c streams + two stride-0 mean taps).
    b.for_(0, c, 1, |b, i| {
        b.for_(0, c, 1, |b, j| {
            b.set(acc, Expr::cf(0.0));
            b.for_(0, r, 1, |b, k| {
                let xi = Expr::load(data, k.clone() * Expr::c(c) + i.clone())
                    - Expr::load(mean, i.clone());
                let xj = Expr::load(data, k * Expr::c(c) + j.clone()) - Expr::load(mean, j.clone());
                b.set(acc, Expr::Scalar(acc) + xi * xj);
            });
            b.store(
                cov,
                i.clone() * Expr::c(c) + j,
                Expr::Scalar(acc) / Expr::cf((r - 1) as f64),
            );
        });
    });
    let prog = b.build();
    let (seed, cells_) = (s.seed, cells);
    Workload {
        name: "pca".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            mem.array_mut(data)
                .copy_from_slice(&gen::unit_floats(cells_, seed + 50));
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_reconstructs_input() {
        // L * L^T must equal the original SPD matrix (lower triangle).
        let s = Scale::tiny();
        let w = cholesky(&s);
        let n = s.mat;
        let mut orig = Memory::for_program(&w.program);
        (w.init)(&mut orig);
        let a0: Vec<f64> = orig.array(ArrayId(0)).iter().map(|v| v.as_f64()).collect();
        let out = w.reference();
        let l: Vec<f64> = out.array(ArrayId(0)).iter().map(|v| v.as_f64()).collect();
        for i in 0..n {
            for j in 0..=i {
                let mut acc = 0.0;
                for k in 0..=j {
                    acc += l[i * n + k] * l[j * n + k];
                }
                assert!(
                    (acc - a0[i * n + j]).abs() < 1e-6 * (1.0 + a0[i * n + j].abs()),
                    "LL^T mismatch at ({i},{j}): {acc} vs {}",
                    a0[i * n + j]
                );
            }
        }
    }

    #[test]
    fn pca_covariance_is_symmetric() {
        let s = Scale::tiny();
        let w = pca(&s);
        let out = w.reference();
        let c = s.mat;
        let cov = out.array(ArrayId(2));
        for i in 0..c {
            for j in 0..c {
                let d = (cov[i * c + j].as_f64() - cov[j * c + i].as_f64()).abs();
                assert!(d < 1e-9, "asymmetry at ({i},{j})");
            }
            assert!(cov[i * c + i].as_f64() >= -1e-12, "negative variance");
        }
    }

    #[test]
    fn pca_means_match_hand_computation() {
        let s = Scale::tiny();
        let w = pca(&s);
        let mut input = Memory::for_program(&w.program);
        (w.init)(&mut input);
        let r = s.rows * 2;
        let c = s.mat;
        let data: Vec<f64> = input.array(ArrayId(0)).iter().map(|v| v.as_f64()).collect();
        let out = w.reference();
        for j in 0..c {
            let expect: f64 = (0..r).map(|k| data[k * c + j]).sum::<f64>() / r as f64;
            assert!((out.array(ArrayId(1))[j].as_f64() - expect).abs() < 1e-9);
        }
    }
}
