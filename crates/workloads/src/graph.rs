//! Irregular kernels: level-synchronous bfs, pagerank and pointer-chase.

use crate::gen;
use crate::{Scale, Workload};
use distda_ir::prelude::*;
use std::sync::Arc;

/// Level-synchronous breadth-first search over a CSR graph (Rodinia
/// `bfs`): host loops over frontier nodes, the offloaded inner loop walks
/// each node's edge list with indirect accesses.
pub fn bfs(s: &Scale) -> Workload {
    let n = s.nodes;
    let (row_ptr, col) = gen::csr_graph(n, s.edge_factor, s.seed + 80);
    let (_, ecc) = gen::bfs_reference(&row_ptr, &col, 0);
    let levels = (ecc + 1) as i64;
    let m = col.len();

    let mut b = ProgramBuilder::new("bfs");
    let ap = b.array_i64("ap", n + 1);
    let aj = b.array_i64("aj", m);
    let mask = b.array_i64("mask", n);
    let visited = b.array_i64("visited", n);
    let updating = b.array_i64("updating", n);
    let cost = b.array_i64("cost", n);

    b.for_(0, levels, 1, |b, _lvl| {
        b.for_(0, n as i64, 1, |b, v| {
            b.when(Expr::load(mask, v.clone()), |b| {
                b.store(mask, v.clone(), Expr::c(0));
                let lo = Expr::load(ap, v.clone());
                let hi = Expr::load(ap, v.clone() + Expr::c(1));
                b.for_(lo, hi, 1, |b, e| {
                    let id = Expr::load(aj, e);
                    let vis = Expr::load(visited, id.clone());
                    let newc = Expr::load(cost, v.clone()) + Expr::c(1);
                    b.store(
                        cost,
                        id.clone(),
                        vis.clone().select(Expr::load(cost, id.clone()), newc),
                    );
                    b.store(
                        updating,
                        id.clone(),
                        vis.select(Expr::load(updating, id), Expr::c(1)),
                    );
                });
            });
        });
        // Frontier rotation.
        b.for_(0, n as i64, 1, |b, v| {
            let upd = Expr::load(updating, v.clone());
            b.store(mask, v.clone(), upd.clone());
            b.store(
                visited,
                v.clone(),
                upd.select(Expr::c(1), Expr::load(visited, v.clone())),
            );
            b.store(updating, v, Expr::c(0));
        });
    });
    let prog = b.build();
    let rp = row_ptr;
    Workload {
        name: "bfs".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in rp.iter().enumerate() {
                mem.array_mut(ap)[k] = Value::I(*v);
            }
            for (k, v) in col.iter().enumerate() {
                mem.array_mut(aj)[k] = Value::I(*v);
            }
            mem.array_mut(mask)[0] = Value::I(1);
            mem.array_mut(visited)[0] = Value::I(1);
            // Unreached marker.
            for v in mem.array_mut(cost).iter_mut().skip(1) {
                *v = Value::I(-1);
            }
        }),
    }
}

/// Serial pagerank (Sable benchmark style) on a CSR in-edge list: the
/// offloaded inner loop gathers ranks through two indirect streams.
pub fn pagerank(s: &Scale) -> Workload {
    let n = s.nodes;
    let (row_ptr, col) = gen::csr_graph(n, s.edge_factor, s.seed + 90);
    let m = col.len();
    // Out-degrees for normalization.
    let mut deg = vec![0i64; n];
    for &c in &col {
        deg[c as usize] += 1;
    }

    let mut b = ProgramBuilder::new("pagerank");
    let ap = b.array_i64("ap", n + 1);
    let aj = b.array_i64("aj", m);
    let pr = b.array_f64("pr", n);
    let pr_new = b.array_f64("pr_new", n);
    let invdeg = b.array_f64("invdeg", n);
    let acc = b.scalar("acc", 0.0f64);

    b.for_(0, s.iters as i64, 1, |b, _it| {
        b.for_(0, n as i64, 1, |b, v| {
            b.set(acc, Expr::cf(0.0));
            let lo = Expr::load(ap, v.clone());
            let hi = Expr::load(ap, v.clone() + Expr::c(1));
            b.for_(lo, hi, 1, |b, e| {
                let u = Expr::load(aj, e);
                b.set(
                    acc,
                    Expr::Scalar(acc) + Expr::load(pr, u.clone()) * Expr::load(invdeg, u),
                );
            });
            b.store(
                pr_new,
                v,
                Expr::cf(0.15 / n as f64) + Expr::cf(0.85) * Expr::Scalar(acc),
            );
        });
        b.for_(0, n as i64, 1, |b, v| {
            b.store(pr, v.clone(), Expr::load(pr_new, v));
        });
    });
    let prog = b.build();
    let rp = row_ptr;
    Workload {
        name: "pr".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            for (k, v) in rp.iter().enumerate() {
                mem.array_mut(ap)[k] = Value::I(*v);
            }
            for (k, v) in col.iter().enumerate() {
                mem.array_mut(aj)[k] = Value::I(*v);
            }
            for v in mem.array_mut(pr).iter_mut() {
                *v = Value::F(1.0 / n as f64);
            }
            for (k, d) in deg.iter().enumerate() {
                mem.array_mut(invdeg)[k] = Value::F(if *d > 0 { 1.0 / *d as f64 } else { 0.0 });
            }
        }),
    }
}

/// Uniform-random pointer chase: a serialized dependent-load chain
/// (Table VI's 4-instruction, zero-buffer offload).
pub fn pointer_chase(s: &Scale) -> Workload {
    // The paper's pointer-chase works over an 8 MB uniform distribution —
    // well past the 2 MB LLC. Scale the table with the suite but keep it
    // LLC-exceeding except at tiny test scale.
    let n = if s.nodes >= 1024 {
        (s.nodes * 256).max(512 * 1024)
    } else {
        s.nodes.max(1024)
    };
    let mut b = ProgramBuilder::new("pointer-chase");
    let next = b.array_i64("next", n);
    let out = b.array_i64("out", 1);
    let p = b.scalar("p", 0i64);
    b.for_(0, s.chase as i64, 1, |b, _| {
        b.set(p, Expr::load(next, Expr::Scalar(p)));
    });
    b.store(out, Expr::c(0), Expr::Scalar(p));
    let prog = b.build();
    let seed = s.seed;
    Workload {
        name: "pch".into(),
        ref_cache: Default::default(),
        program: prog,
        init: Arc::new(move |mem: &mut Memory| {
            let chain = gen::permutation_cycle(n, seed + 100);
            for (k, v) in chain.iter().enumerate() {
                mem.array_mut(next)[k] = Value::I(*v);
            }
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_costs_match_reference_distances() {
        let s = Scale::tiny();
        let (rp, col) = gen::csr_graph(s.nodes, s.edge_factor, s.seed + 80);
        let (dist, _) = gen::bfs_reference(&rp, &col, 0);
        let w = bfs(&s);
        let out = w.reference();
        let cost = out.array(ArrayId(5));
        // cost[0] initialized to 0 and source visited.
        assert_eq!(cost[0].as_i64(), 0);
        for (v, d) in dist.iter().enumerate().skip(1) {
            assert_eq!(cost[v].as_i64(), *d, "node {v}");
        }
    }

    #[test]
    fn pagerank_total_mass_is_conserved_approximately() {
        let s = Scale::tiny();
        let w = pagerank(&s);
        let out = w.reference();
        let total: f64 = out.array(ArrayId(2)).iter().map(|v| v.as_f64()).sum();
        // With dangling nodes mass may leak slightly below 1.
        assert!(total > 0.3 && total <= 1.0 + 1e-9, "total {total}");
    }

    #[test]
    fn pointer_chase_lands_where_the_cycle_says() {
        let s = Scale::tiny();
        let w = pointer_chase(&s);
        let n = s.nodes.max(1024);
        let chain = gen::permutation_cycle(n, s.seed + 100);
        let mut p = 0i64;
        for _ in 0..s.chase {
            p = chain[p as usize];
        }
        let out = w.reference();
        assert_eq!(out.array(ArrayId(1))[0].as_i64(), p);
    }
}
