//! # distda-energy
//!
//! The energy and area models (the paper's McPAT + Cacti + FreePDK45
//! substitute): per-event dynamic energies at a nominal 32 nm node, and
//! the Section VI-E area accounting for the per-cluster accelerator
//! resources.
//!
//! Energy results in the paper are sums of event counts times per-event
//! energies; we count the same events in the machine model and apply the
//! same style of per-event costs, so energy *ratios* between
//! configurations — all the paper reports — are preserved.
//!
//! ```
//! use distda_energy::{EnergyCounters, EnergyModel};
//! let model = EnergyModel::nominal_32nm();
//! let mut c = EnergyCounters::default();
//! c.host_ops = 1000;
//! c.dram_accesses = 10;
//! let b = model.energy_pj(&c);
//! assert!(b.total() > 0.0);
//! assert!(b.dram > b.core * 0.2); // DRAM events dominate per-event cost
//! ```

pub mod area;

pub use area::AreaModel;

/// Event counts accumulated by one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyCounters {
    /// Dynamic instructions retired by the OoO host.
    pub host_ops: u64,
    /// Microcode ops retired by in-order accelerator cores.
    pub io_ops: u64,
    /// Ops executed on CGRA fabric tiles.
    pub cgra_ops: u64,
    /// L1 data cache accesses.
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L3 bank accesses (all clusters).
    pub l3_accesses: u64,
    /// DRAM line accesses (reads + writes).
    pub dram_accesses: u64,
    /// NoC traffic in byte-hops (bytes times links traversed).
    pub noc_hop_bytes: u64,
    /// Access-unit buffer element accesses (the cheap "intra" accesses).
    pub buffer_elem_accesses: u64,
    /// Access-unit buffer line installs/drains.
    pub buffer_line_moves: u64,
    /// MMIO configuration words (cp_config/cp_set_rf/cp_run traffic).
    pub mmio_words: u64,
    /// Host cache lines flushed at offload boundaries.
    pub flushed_lines: u64,
}

impl EnergyCounters {
    /// Element-wise sum.
    pub fn add(&mut self, o: &EnergyCounters) {
        self.host_ops += o.host_ops;
        self.io_ops += o.io_ops;
        self.cgra_ops += o.cgra_ops;
        self.l1_accesses += o.l1_accesses;
        self.l2_accesses += o.l2_accesses;
        self.l3_accesses += o.l3_accesses;
        self.dram_accesses += o.dram_accesses;
        self.noc_hop_bytes += o.noc_hop_bytes;
        self.buffer_elem_accesses += o.buffer_elem_accesses;
        self.buffer_line_moves += o.buffer_line_moves;
        self.mmio_words += o.mmio_words;
        self.flushed_lines += o.flushed_lines;
    }
}

/// Per-event dynamic energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Per retired OoO instruction (fetch/rename/ROB/issue overheads).
    pub host_op_pj: f64,
    /// Per in-order accelerator microcode op.
    pub io_op_pj: f64,
    /// Per CGRA tile op (no fetch/decode; statically routed operands).
    pub cgra_op_pj: f64,
    /// Per L1 access.
    pub l1_pj: f64,
    /// Per L2 access.
    pub l2_pj: f64,
    /// Per L3 bank access.
    pub l3_pj: f64,
    /// Per DRAM 64-byte access.
    pub dram_pj: f64,
    /// Per byte-hop on the mesh.
    pub noc_byte_hop_pj: f64,
    /// Per 8-byte access-unit buffer reference.
    pub buffer_elem_pj: f64,
    /// Per buffer line install/drain (SRAM line write).
    pub buffer_line_pj: f64,
    /// Per MMIO configuration word.
    pub mmio_pj: f64,
    /// Per flushed host cache line.
    pub flush_pj: f64,
}

impl EnergyModel {
    /// Nominal 32 nm values in the spirit of McPAT/Cacti characterizations
    /// (Table III technology).
    pub fn nominal_32nm() -> Self {
        Self {
            host_op_pj: 80.0,
            io_op_pj: 10.0,
            cgra_op_pj: 4.0,
            l1_pj: 15.0,
            l2_pj: 30.0,
            l3_pj: 50.0,
            dram_pj: 2600.0,
            noc_byte_hop_pj: 2.5,
            buffer_elem_pj: 2.0,
            buffer_line_pj: 20.0,
            mmio_pj: 40.0,
            flush_pj: 10.0,
        }
    }

    /// Applies the model to counters.
    pub fn energy_pj(&self, c: &EnergyCounters) -> EnergyBreakdown {
        EnergyBreakdown {
            core: c.host_ops as f64 * self.host_op_pj,
            accel: c.io_ops as f64 * self.io_op_pj + c.cgra_ops as f64 * self.cgra_op_pj,
            cache: c.l1_accesses as f64 * self.l1_pj
                + c.l2_accesses as f64 * self.l2_pj
                + c.l3_accesses as f64 * self.l3_pj
                + c.flushed_lines as f64 * self.flush_pj,
            noc: c.noc_hop_bytes as f64 * self.noc_byte_hop_pj,
            dram: c.dram_accesses as f64 * self.dram_pj,
            buffers: c.buffer_elem_accesses as f64 * self.buffer_elem_pj
                + c.buffer_line_moves as f64 * self.buffer_line_pj,
            mmio: c.mmio_words as f64 * self.mmio_pj,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::nominal_32nm()
    }
}

/// Dynamic energy by component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Host core pipeline energy.
    pub core: f64,
    /// Accelerator compute energy.
    pub accel: f64,
    /// Cache hierarchy energy.
    pub cache: f64,
    /// Interconnect energy.
    pub noc: f64,
    /// DRAM energy.
    pub dram: f64,
    /// Access-unit buffer energy.
    pub buffers: f64,
    /// Configuration MMIO energy.
    pub mmio: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    pub fn total(&self) -> f64 {
        self.core + self.accel + self.cache + self.noc + self.dram + self.buffers + self.mmio
    }

    /// Folds into a report with one entry per component.
    pub fn report(&self) -> distda_sim::Report {
        let mut r = distda_sim::Report::new();
        r.add("energy.core_pj", self.core);
        r.add("energy.accel_pj", self.accel);
        r.add("energy.cache_pj", self.cache);
        r.add("energy.noc_pj", self.noc);
        r.add("energy.dram_pj", self.dram);
        r.add("energy.buffers_pj", self.buffers);
        r.add("energy.mmio_pj", self.mmio);
        r.add("energy.total_pj", self.total());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counters_zero_energy() {
        let m = EnergyModel::nominal_32nm();
        assert_eq!(m.energy_pj(&EnergyCounters::default()).total(), 0.0);
    }

    #[test]
    fn per_event_hierarchy_is_ordered() {
        let m = EnergyModel::nominal_32nm();
        assert!(m.l1_pj < m.l2_pj && m.l2_pj < m.l3_pj && m.l3_pj < m.dram_pj);
        assert!(m.buffer_elem_pj < m.l1_pj, "intra must beat L1");
        assert!(m.cgra_op_pj < m.io_op_pj && m.io_op_pj < m.host_op_pj);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = EnergyModel::nominal_32nm();
        let c = EnergyCounters {
            host_ops: 100,
            io_ops: 50,
            cgra_ops: 20,
            l1_accesses: 10,
            l2_accesses: 5,
            l3_accesses: 3,
            dram_accesses: 1,
            noc_hop_bytes: 256,
            buffer_elem_accesses: 40,
            buffer_line_moves: 4,
            mmio_words: 6,
            flushed_lines: 2,
        };
        let b = m.energy_pj(&c);
        let sum = b.core + b.accel + b.cache + b.noc + b.dram + b.buffers + b.mmio;
        assert!((b.total() - sum).abs() < 1e-9);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn counters_add_elementwise() {
        let mut a = EnergyCounters {
            host_ops: 1,
            ..Default::default()
        };
        let b = EnergyCounters {
            host_ops: 2,
            dram_accesses: 3,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.host_ops, 3);
        assert_eq!(a.dram_accesses, 3);
    }

    #[test]
    fn report_contains_total() {
        let m = EnergyModel::nominal_32nm();
        let c = EnergyCounters {
            io_ops: 7,
            ..Default::default()
        };
        let r = m.energy_pj(&c).report();
        assert_eq!(r.get("energy.total_pj"), Some(70.0));
    }
}
