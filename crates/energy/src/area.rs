//! Area accounting for the per-cluster accelerator resources
//! (paper Section VI-E, derived with Yosys + FreePDK45 + scaling
//! equations in the original; reproduced here as a parametric model).

/// Area model at a nominal 32 nm node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Area of one 256 KB L3 cluster (mm^2).
    pub l3_cluster_mm2: f64,
    /// Total chip area (mm^2).
    pub chip_mm2: f64,
    /// One multi-threaded single-issue in-order core with two complex and
    /// two floating-point ALUs (mm^2).
    pub io_core_mm2: f64,
    /// One 5x5 heterogeneous CGRA tile array with buffers and ACP (mm^2).
    pub cgra_5x5_mm2: f64,
    /// 4 KB access buffer + ACP port (mm^2).
    pub access_unit_mm2: f64,
}

impl AreaModel {
    /// Values calibrated so the relative overheads match Section VI-E:
    /// IO core = 1.9 % of a cluster (0.3 % of chip), 5x5 CGRA = 2.9 % of a
    /// cluster (0.48 % of chip), across 8 clusters.
    pub fn nominal_32nm() -> Self {
        Self {
            l3_cluster_mm2: 1.50,
            chip_mm2: 76.0,
            io_core_mm2: 0.0225,
            cgra_5x5_mm2: 0.0375,
            access_unit_mm2: 0.006,
        }
    }

    /// Per-cluster overhead fraction of adding an IO core + access unit.
    pub fn io_overhead_per_cluster(&self) -> f64 {
        (self.io_core_mm2 + self.access_unit_mm2) / self.l3_cluster_mm2
    }

    /// Per-cluster overhead fraction of adding a 5x5 CGRA + access unit.
    pub fn cgra_overhead_per_cluster(&self) -> f64 {
        (self.cgra_5x5_mm2 + self.access_unit_mm2) / self.l3_cluster_mm2
    }

    /// Chip-level overhead fraction for `clusters` IO-core-equipped
    /// clusters.
    pub fn io_overhead_chip(&self, clusters: usize) -> f64 {
        (self.io_core_mm2 + self.access_unit_mm2) * clusters as f64 / self.chip_mm2
    }

    /// Chip-level overhead fraction for `clusters` CGRA-equipped clusters.
    pub fn cgra_overhead_chip(&self, clusters: usize) -> f64 {
        (self.cgra_5x5_mm2 + self.access_unit_mm2) * clusters as f64 / self.chip_mm2
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::nominal_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_overheads_match_section_vi_e() {
        let a = AreaModel::nominal_32nm();
        let per_cluster = a.io_overhead_per_cluster() * 100.0;
        let chip = a.io_overhead_chip(8) * 100.0;
        assert!((1.4..=2.4).contains(&per_cluster), "got {per_cluster}%");
        assert!((0.2..=0.4).contains(&chip), "got {chip}%");
    }

    #[test]
    fn cgra_overheads_match_section_vi_e() {
        let a = AreaModel::nominal_32nm();
        let per_cluster = a.cgra_overhead_per_cluster() * 100.0;
        let chip = a.cgra_overhead_chip(8) * 100.0;
        assert!((2.4..=3.4).contains(&per_cluster), "got {per_cluster}%");
        assert!((0.38..=0.58).contains(&chip), "got {chip}%");
    }

    #[test]
    fn cgra_is_bigger_than_io_core() {
        let a = AreaModel::nominal_32nm();
        assert!(a.cgra_5x5_mm2 > a.io_core_mm2);
    }
}
