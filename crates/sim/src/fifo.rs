//! Bounded FIFO queues with credit semantics.
//!
//! These back every decoupling buffer in the modeled machine: access-unit
//! SRAM buffers, NoC link queues and MSHR-fill queues. Capacity limits are
//! what give the model its back-pressure behaviour (the paper's
//! "credit-based backwards flow-control", Section IV-C).

use std::collections::VecDeque;

/// A bounded FIFO. Pushing past capacity is an error surfaced to the caller
/// so callers model stalls instead of silently growing queues.
///
/// # Examples
///
/// ```
/// use distda_sim::Fifo;
/// let mut f = Fifo::new(2);
/// assert!(f.try_push(1).is_ok());
/// assert!(f.try_push(2).is_ok());
/// assert!(f.try_push(3).is_err());
/// assert_eq!(f.pop(), Some(1));
/// assert_eq!(f.credits(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    total_pushed: u64,
    high_water: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be nonzero");
        Self {
            // Preallocate the full configured depth: a bounded queue never
            // holds more than `capacity` elements, so sizing the ring from
            // the real depth means no reallocation can ever happen mid-run.
            items: VecDeque::with_capacity(capacity),
            capacity,
            total_pushed: 0,
            high_water: 0,
        }
    }

    /// Attempts to enqueue, returning the value back if the FIFO is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the FIFO is at capacity.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(value);
        }
        self.items.push_back(value);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the FIFO holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining space (credits available to a producer).
    pub fn credits(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total elements ever pushed (for occupancy statistics).
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Maximum occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drops all queued elements, keeping statistics.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates over queued elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Pushes elements from `iter` until the FIFO fills or the iterator
    /// runs dry. On overflow the refused element comes back unchanged as
    /// `Err(v)` — the stable-data rule — and the caller still owns the
    /// iterator, so nothing is lost: re-offer `v` and resume the
    /// iterator once credits free up.
    ///
    /// This replaces the old panicking `Extend` implementation, which
    /// required callers to pre-check [`credits`](Self::credits) and
    /// turned a back-pressure event into an abort.
    pub fn try_extend<I: Iterator<Item = T>>(&mut self, iter: &mut I) -> Result<(), T> {
        for v in iter {
            self.try_push(v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_orders_elements() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.try_push(i).unwrap();
        }
        assert_eq!(
            (0..4).map(|_| f.pop().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn rejects_push_when_full() {
        let mut f = Fifo::new(1);
        f.try_push('a').unwrap();
        assert_eq!(f.try_push('b'), Err('b'));
        assert!(f.is_full());
    }

    #[test]
    fn credits_track_space() {
        let mut f = Fifo::new(3);
        assert_eq!(f.credits(), 3);
        f.try_push(()).unwrap();
        assert_eq!(f.credits(), 2);
        f.pop();
        assert_eq!(f.credits(), 3);
    }

    #[test]
    fn high_water_is_monotone() {
        let mut f = Fifo::new(8);
        f.try_push(1).unwrap();
        f.try_push(2).unwrap();
        f.pop();
        f.pop();
        f.try_push(3).unwrap();
        assert_eq!(f.high_water(), 2);
        assert_eq!(f.total_pushed(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn preallocates_full_configured_depth() {
        let f = Fifo::<u8>::new(500);
        assert!(
            f.items.capacity() >= 500,
            "ring sized below configured depth: {}",
            f.items.capacity()
        );
    }

    #[test]
    fn front_does_not_consume() {
        let mut f = Fifo::new(2);
        f.try_push(7).unwrap();
        assert_eq!(f.front(), Some(&7));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn try_extend_fills_then_hands_back_the_refused_element() {
        let mut f = Fifo::new(3);
        let mut src = 0..5;
        assert_eq!(f.try_extend(&mut src), Err(3));
        assert_eq!(f.len(), 3);
        // Nothing lost: the refused element came back, and the caller
        // still holds the rest of the iterator.
        assert_eq!(src.next(), Some(4));
        f.pop();
        f.try_push(3).unwrap();
        assert_eq!(
            (0..3).map(|_| f.pop().unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn try_extend_accepts_everything_when_room() {
        let mut f = Fifo::new(4);
        let mut src = 10..13;
        assert!(f.try_extend(&mut src).is_ok());
        assert_eq!(f.len(), 3);
        assert_eq!(src.next(), None);
    }
}
