//! Handshaked channel ports: the one interface every component boundary
//! speaks.
//!
//! The paper's offload model (§IV-C, Fig. 4) connects components through
//! decoupled, credit-flow-controlled channels, and hardware interface
//! specs in the same family (CV-X-IF and friends) express *every*
//! boundary as the same valid/ready handshake so that conformance can be
//! checked once, generically. [`Channel`] is that primitive for the
//! simulator: a bounded FIFO whose producer side is a [`TxPort`]
//! (offer = valid, room = ready) and whose consumer side is an
//! [`RxPort`] (peek = valid, accept = pop). The handshake rules are:
//!
//! * **stable data** — a refused [`TxPort::offer`] hands the value back
//!   unchanged (`Err(v)`), so the producer can re-offer the identical
//!   value next cycle, exactly like holding a `valid` wire stable;
//! * **no loss** — every accepted offer is eventually observable:
//!   `pushed == popped + len` at all times;
//! * **no pop without valid** — [`RxPort::accept`] is the only way to
//!   remove an element and returns `None` on an empty channel;
//! * **credit conservation** — when a boundary runs a credit loop
//!   ([`CreditLoop`]), credits held + credits in debt + occupancy never
//!   exceed the ring capacity, and they sum exactly to it once drained.
//!
//! Each channel carries its own occupancy statistics (total pushed,
//! total popped, high-water mark) plus a stall counter that producers
//! bump when back-pressure refuses an offer — the raw material for
//! per-port stall attribution in the tracer and the `distda_port_*`
//! metrics series. [`PortSnapshot`] freezes those numbers for the
//! conformance harness's generic port-compliance audit
//! (`conformance::check_ports`).

use std::collections::VecDeque;

/// A bounded, handshaked FIFO channel between one producer and one
/// consumer. See the [module docs](self) for the handshake rules.
///
/// A capacity of [`usize::MAX`] (from [`Channel::unbounded`]) models a
/// boundary whose back-pressure lives elsewhere — e.g. a response queue
/// whose occupancy is already limited by the requester's outstanding
/// window. Such channels never refuse an offer, but still count
/// occupancy and enforce no-loss.
#[derive(Debug, Clone)]
pub struct Channel<T> {
    q: VecDeque<T>,
    capacity: usize,
    pushed: u64,
    popped: u64,
    high_water: usize,
    stalls: u64,
}

impl<T> Channel<T> {
    /// A channel refusing offers beyond `capacity` queued elements.
    pub fn bounded(capacity: usize) -> Self {
        Self {
            q: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            pushed: 0,
            popped: 0,
            high_water: 0,
            stalls: 0,
        }
    }

    /// A channel that never refuses an offer (see the type docs).
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// The producer-side handshake port.
    pub fn tx(&mut self) -> TxPort<'_, T> {
        TxPort { ch: self }
    }

    /// The consumer-side handshake port.
    pub fn rx(&mut self) -> RxPort<'_, T> {
        RxPort { ch: self }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// `true` when an offer would be refused.
    pub fn is_full(&self) -> bool {
        self.q.len() >= self.capacity
    }

    /// Remaining room: offers guaranteed to be accepted right now.
    pub fn credits(&self) -> usize {
        self.capacity - self.q.len()
    }

    /// The configured bound ([`usize::MAX`] for unbounded channels).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Widens the bound by `extra` slots (saturating). Used when a
    /// machine is provisioned incrementally and a shared port must be
    /// sized for the traffic every configured producer can have in
    /// flight at once.
    pub fn grow(&mut self, extra: usize) {
        self.capacity = self.capacity.saturating_add(extra);
    }

    /// The element an `accept` would return, without the handshake.
    pub fn front(&self) -> Option<&T> {
        self.q.front()
    }

    /// Iterates queued elements front (oldest) to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.q.iter()
    }

    /// Total elements ever accepted by the channel.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total elements ever handed to the consumer.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Cycles a producer spent refused at this port (see
    /// [`Channel::note_stalls`]).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Charges `n` producer stall cycles to this port. Producers that
    /// learn about back-pressure out of band (a refused offer they
    /// account per-cycle, or a skip-ahead bulk charge) use this to keep
    /// per-port stall series summing to machine totals.
    pub fn note_stalls(&mut self, n: u64) {
        self.stalls += n;
    }

    /// Freezes the channel's statistics under `name` for audits and
    /// metrics export.
    pub fn snapshot(&self, name: impl Into<String>) -> PortSnapshot {
        PortSnapshot {
            name: name.into(),
            pushed: self.pushed,
            popped: self.popped,
            len: self.q.len(),
            capacity: self.capacity,
            high_water: self.high_water,
            stalls: self.stalls,
        }
    }
}

/// The producer half of a [`Channel`] handshake.
#[derive(Debug)]
pub struct TxPort<'a, T> {
    ch: &'a mut Channel<T>,
}

impl<T> TxPort<'_, T> {
    /// `true` when an [`offer`](Self::offer) right now would be accepted.
    pub fn ready(&self) -> bool {
        !self.ch.is_full()
    }

    /// Offers `v` across the boundary. On back-pressure the value comes
    /// back unchanged (`Err(v)`) — the stable-data rule — and the port
    /// records one refused offer in its stall counter.
    pub fn offer(&mut self, v: T) -> Result<(), T> {
        if self.ch.is_full() {
            self.ch.stalls += 1;
            return Err(v);
        }
        self.ch.q.push_back(v);
        self.ch.pushed += 1;
        self.ch.high_water = self.ch.high_water.max(self.ch.q.len());
        Ok(())
    }
}

/// The consumer half of a [`Channel`] handshake.
#[derive(Debug)]
pub struct RxPort<'a, T> {
    ch: &'a mut Channel<T>,
}

impl<T> RxPort<'_, T> {
    /// `true` when [`accept`](Self::accept) would yield an element.
    pub fn valid(&self) -> bool {
        !self.ch.is_empty()
    }

    /// The element an `accept` would return, without committing.
    pub fn peek(&self) -> Option<&T> {
        self.ch.q.front()
    }

    /// Completes the handshake for the oldest element. Structurally
    /// cannot pop without valid: returns `None` on an empty channel.
    pub fn accept(&mut self) -> Option<T> {
        let v = self.ch.q.pop_front()?;
        self.ch.popped += 1;
        Some(v)
    }
}

/// Credit-based flow control for a boundary whose receiver returns
/// credits asynchronously (the paper's cross-partition operand
/// channels): the producer spends from `credits`, the consumer either
/// returns a credit immediately (same-node) or accumulates `debt` and
/// flushes it in batches of `batch` as explicit credit messages,
/// halving the credit-return traffic.
///
/// Invariant (checked by drain audits): `credits + debt + occupancy`
/// never exceeds `capacity`, and `credits + debt == capacity` once the
/// channel drains.
#[derive(Debug, Clone)]
pub struct CreditLoop {
    credits: usize,
    debt: usize,
    capacity: usize,
    batch: usize,
}

impl CreditLoop {
    /// A loop starting with the full `capacity` of credits; `batch` is
    /// the debt level at which [`defer`](Self::defer) flushes.
    pub fn new(capacity: usize, batch: usize) -> Self {
        Self {
            credits: capacity,
            debt: 0,
            capacity,
            batch,
        }
    }

    /// Credits the producer currently holds.
    pub fn credits(&self) -> usize {
        self.credits
    }

    /// Credits consumed but not yet returned as messages.
    pub fn debt(&self) -> usize {
        self.debt
    }

    /// The ring size the loop was provisioned with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spends one credit; `false` (and no state change) when none left.
    pub fn take(&mut self) -> bool {
        if self.credits == 0 {
            return false;
        }
        self.credits -= 1;
        true
    }

    /// Returns one credit directly to the producer (same-node consumer:
    /// no message needed).
    pub fn put(&mut self) {
        self.credits += 1;
    }

    /// Receives `n` credits carried by a credit message.
    pub fn grant(&mut self, n: usize) {
        self.credits += n;
    }

    /// Defers one credit return into the debt accumulator. When the
    /// batch threshold is reached the whole debt is flushed: the caller
    /// gets `Some(n)` and must send a credit message for `n`.
    pub fn defer(&mut self) -> Option<usize> {
        self.debt += 1;
        if self.debt >= self.batch {
            let n = self.debt;
            self.debt = 0;
            return Some(n);
        }
        None
    }

    /// `true` when the *next* [`defer`](Self::defer) would flush —
    /// producers that cannot afford a refused flush check this first.
    pub fn defer_would_flush(&self) -> bool {
        self.debt + 1 >= self.batch
    }

    /// Undoes a flush whose credit message was refused downstream: the
    /// debt goes back to accumulating.
    pub fn unflush(&mut self, n: usize) {
        self.debt += n;
    }

    /// Returns all outstanding debt to the producer without a message —
    /// the between-launches reset when both sides are known quiesced.
    pub fn restore(&mut self) {
        self.credits += self.debt;
        self.debt = 0;
    }

    /// The conservation invariant against the channel occupancy `len`:
    /// credits held + debt + queued values never exceed the ring.
    pub fn conserves(&self, len: usize) -> bool {
        self.credits + self.debt + len <= self.capacity
    }

    /// The drained-state invariant: with the channel empty, every
    /// credit is either held or in debt.
    pub fn drained(&self) -> bool {
        self.credits + self.debt == self.capacity
    }
}

/// A point-in-time freeze of one port's statistics, for the generic
/// port-compliance audit and the `distda_port_*` metrics export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortSnapshot {
    /// Stable port name (becomes the `port` metric label).
    pub name: String,
    /// Total elements accepted by the channel.
    pub pushed: u64,
    /// Total elements handed to the consumer.
    pub popped: u64,
    /// Occupancy at snapshot time.
    pub len: usize,
    /// Configured bound ([`usize::MAX`] = unbounded).
    pub capacity: usize,
    /// Highest occupancy ever observed.
    pub high_water: usize,
    /// Producer stall cycles charged to the port.
    pub stalls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offer_accept_preserve_fifo_order_and_counts() {
        let mut ch = Channel::bounded(4);
        for v in 0..4 {
            assert!(ch.tx().offer(v).is_ok());
        }
        assert!(ch.is_full());
        assert_eq!(ch.high_water(), 4);
        for v in 0..4 {
            assert_eq!(ch.rx().peek(), Some(&v));
            assert_eq!(ch.rx().accept(), Some(v));
        }
        assert_eq!(ch.rx().accept(), None);
        assert_eq!(ch.total_pushed(), 4);
        assert_eq!(ch.total_popped(), 4);
    }

    #[test]
    fn refused_offer_returns_value_unchanged_and_counts_a_stall() {
        let mut ch = Channel::bounded(1);
        assert!(ch.tx().offer(7).is_ok());
        assert!(!ch.tx().ready());
        assert_eq!(ch.tx().offer(9), Err(9));
        assert_eq!(ch.stalls(), 1);
        assert_eq!(ch.rx().accept(), Some(7));
        assert!(ch.tx().offer(9).is_ok());
    }

    #[test]
    fn no_loss_invariant_holds_at_every_step() {
        let mut ch = Channel::bounded(3);
        let mut next = 0u64;
        for step in 0..50u64 {
            if step % 3 != 2 {
                let _ = ch.tx().offer(next);
                if !ch.is_full() || ch.len() < 3 {
                    next += 1;
                }
            } else {
                ch.rx().accept();
            }
            assert_eq!(ch.total_pushed(), ch.total_popped() + ch.len() as u64);
        }
    }

    #[test]
    fn unbounded_channel_never_refuses() {
        let mut ch = Channel::unbounded();
        for v in 0..10_000 {
            assert!(ch.tx().offer(v).is_ok());
        }
        assert_eq!(ch.stalls(), 0);
        assert_eq!(ch.len(), 10_000);
    }

    #[test]
    fn grow_widens_the_bound() {
        let mut ch = Channel::bounded(1);
        assert!(ch.tx().offer(1).is_ok());
        assert!(ch.tx().offer(2).is_err());
        ch.grow(1);
        assert!(ch.tx().offer(2).is_ok());
        assert_eq!(ch.capacity(), 2);
    }

    #[test]
    fn credit_loop_take_put_grant_conserve() {
        let mut cl = CreditLoop::new(8, 4);
        assert_eq!(cl.credits(), 8);
        for _ in 0..8 {
            assert!(cl.take());
        }
        assert!(!cl.take());
        cl.put();
        cl.grant(3);
        assert_eq!(cl.credits(), 4);
        assert!(cl.conserves(4));
        assert!(!cl.conserves(5));
    }

    #[test]
    fn credit_loop_defer_flushes_at_batch() {
        let mut cl = CreditLoop::new(8, 3);
        for _ in 0..8 {
            assert!(cl.take());
        }
        assert_eq!(cl.defer(), None);
        assert_eq!(cl.defer(), None);
        assert!(cl.defer_would_flush());
        assert_eq!(cl.defer(), Some(3));
        assert_eq!(cl.debt(), 0);
        // The flushed batch is "in flight" until a grant delivers it.
        cl.grant(3);
        assert_eq!(cl.credits(), 3);
        cl.defer();
        cl.restore();
        assert_eq!(cl.debt(), 0);
        assert_eq!(cl.credits(), 4);
        // A refused flush goes back to accumulating as debt.
        let mut refused = CreditLoop::new(4, 2);
        refused.take();
        refused.take();
        refused.defer();
        let n = refused.defer().unwrap();
        refused.unflush(n);
        assert_eq!(refused.debt(), 2);
        assert!(refused.drained());
    }

    #[test]
    fn credit_loop_drained_requires_full_ring_accounted() {
        let mut cl = CreditLoop::new(4, 2);
        assert!(cl.drained());
        cl.take();
        assert!(!cl.drained());
        cl.defer();
        assert!(cl.drained());
    }

    #[test]
    fn snapshot_freezes_stats() {
        let mut ch = Channel::bounded(2);
        ch.tx().offer('a').unwrap();
        ch.tx().offer('b').unwrap();
        ch.rx().accept();
        ch.note_stalls(5);
        let s = ch.snapshot("p");
        assert_eq!(
            s,
            PortSnapshot {
                name: "p".into(),
                pushed: 2,
                popped: 1,
                len: 1,
                capacity: 2,
                high_water: 2,
                stalls: 5,
            }
        );
    }
}
