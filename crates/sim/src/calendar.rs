//! A bucketed calendar queue of pending wakes.
//!
//! The classic simulation-event-list structure (Brown 1988): pending
//! events hash into an array of tick-interval buckets, so inserting an
//! event is O(1) and draining events in time order only touches the
//! buckets the clock actually crosses — amortized O(1) per event, against
//! O(n) for a scan of every source.
//!
//! The [`Scheduler`](crate::Scheduler) uses one to order its wake probe:
//! the queue holds the last wake tick each component reported, and the
//! probe visits components in ascending-bucket order so the
//! "a component reports `now`" early-exit triggers as soon as possible.
//! Entries beyond the wheel horizon live in an overflow list and migrate
//! into buckets as the window rotates forward, so far-future wakes (a
//! DRAM refresh horizon, an idle engine's next launch) cost nothing until
//! the clock approaches them.

use crate::time::Tick;

/// Bucketed timer wheel over `(tick, id)` entries: O(1) insert, amortized
/// O(1) in-order drain, stable FIFO order inside a bucket.
///
/// # Examples
///
/// ```
/// use distda_sim::calendar::CalendarQueue;
/// let mut q = CalendarQueue::new(4, 8); // 16-tick buckets, 8 of them
/// q.insert(40, 0);
/// q.insert(7, 1);
/// q.insert(1_000_000, 2); // far past the horizon: overflow
/// assert_eq!(q.peek_min(), Some(7));
/// assert_eq!(q.pop_min(), Some((7, 1)));
/// assert_eq!(q.pop_min(), Some((40, 0)));
/// assert_eq!(q.pop_min(), Some((1_000_000, 2)));
/// assert_eq!(q.pop_min(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue {
    /// log2 of the bucket width in ticks.
    width_log2: u32,
    /// One FIFO of `(tick, id)` per bucket; entry order inside a bucket is
    /// insertion order, which keeps tie-breaking deterministic.
    buckets: Vec<Vec<(Tick, u32)>>,
    /// Bucket-occupancy bitmask, one bit per bucket (same idiom as the
    /// mesh's queue-occupancy words): visits, clears and min recomputes
    /// touch only occupied buckets instead of walking the whole wheel.
    occ: Vec<u64>,
    /// Entries at or beyond `horizon()` (more than one full wheel
    /// rotation away). Migrated into buckets as the window rotates.
    overflow: Vec<(Tick, u32)>,
    /// Start of the current rotation window; every bucketed entry's tick
    /// is in `[base, horizon())`.
    base: Tick,
    /// Total entries (buckets + overflow).
    len: usize,
    /// Cached global minimum tick, `None` when empty.
    min: Option<Tick>,
}

impl CalendarQueue {
    /// A queue with `2^width_log2`-tick buckets and `buckets` of them
    /// (rounded up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(width_log2: u32, buckets: usize) -> Self {
        assert!(buckets > 0, "calendar needs at least one bucket");
        let n = buckets.next_power_of_two();
        Self {
            width_log2,
            buckets: vec![Vec::new(); n],
            occ: vec![0; n.div_ceil(64)],
            overflow: Vec::new(),
            base: 0,
            len: 0,
            min: None,
        }
    }

    /// Visits occupied buckets (ascending index) in `[lo, hi)`, calling
    /// `f` for each entry in bucket FIFO order.
    fn visit_occupied(&self, lo: usize, hi: usize, f: &mut impl FnMut(Tick, u32)) {
        for w in lo / 64..hi.div_ceil(64) {
            let mut bits = self.occ[w];
            if w == lo / 64 {
                bits &= !0u64 << (lo % 64);
            }
            let rel = hi - w * 64;
            if rel < 64 {
                bits &= (1u64 << rel) - 1;
            }
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                for &(t, id) in &self.buckets[b] {
                    f(t, id);
                }
            }
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping allocated buckets.
    pub fn clear(&mut self) {
        for w in 0..self.occ.len() {
            let mut bits = self.occ[w];
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.buckets[b].clear();
            }
            self.occ[w] = 0;
        }
        self.overflow.clear();
        self.len = 0;
        self.min = None;
    }

    /// Removes every entry and jumps the rotation window so it starts at
    /// `tick`'s bucket boundary. Used when a caller rebuilds the queue
    /// around a new "now": without the jump a queue that is only ever
    /// rebuilt (never drained through [`CalendarQueue::pop_min`]) would
    /// keep its original window forever and park everything in overflow.
    pub fn clear_to(&mut self, tick: Tick) {
        self.clear();
        self.base = (tick >> self.width_log2) << self.width_log2;
    }

    /// First tick past the current rotation window.
    fn horizon(&self) -> Tick {
        let span = (self.buckets.len() as Tick) << self.width_log2;
        self.base.saturating_add(span)
    }

    fn bucket_of(&self, tick: Tick) -> usize {
        ((tick >> self.width_log2) as usize) & (self.buckets.len() - 1)
    }

    /// Inserts an entry. Ticks below the window base are clamped into the
    /// base bucket (they are already due), ticks past the horizon go to
    /// the overflow list.
    pub fn insert(&mut self, tick: Tick, id: u32) {
        if tick >= self.horizon() {
            self.overflow.push((tick, id));
        } else {
            let b = self.bucket_of(tick.max(self.base));
            self.buckets[b].push((tick, id));
            self.occ[b / 64] |= 1u64 << (b % 64);
        }
        self.len += 1;
        if self.min.is_none_or(|m| tick < m) {
            self.min = Some(tick);
        }
    }

    /// The earliest queued tick, `None` when empty.
    pub fn peek_min(&self) -> Option<Tick> {
        self.min
    }

    /// Removes and returns an entry with the earliest tick (FIFO among
    /// ties in the same bucket; overflow ties come after bucketed ones).
    pub fn pop_min(&mut self) -> Option<(Tick, u32)> {
        let m = self.min?;
        // Rotate the window up to the minimum so its bucket is in range.
        self.rotate_to(m);
        // Same base-clamp as `insert`: already-due entries live in the
        // base bucket regardless of how far past their tick is.
        let b = self.bucket_of(m.max(self.base));
        let pos = self.buckets[b].iter().position(|&(t, _)| t == m);
        // The minimum may instead sit in overflow when the window cannot
        // reach it (horizon saturated near `Tick::MAX`).
        let out = match pos {
            Some(i) => {
                let e = self.buckets[b].remove(i);
                if self.buckets[b].is_empty() {
                    self.occ[b / 64] &= !(1u64 << (b % 64));
                }
                e
            }
            None => {
                let i = self
                    .overflow
                    .iter()
                    .position(|&(t, _)| t == m)
                    .expect("cached min must exist");
                self.overflow.remove(i)
            }
        };
        self.len -= 1;
        self.recompute_min();
        Some(out)
    }

    /// Moves the window base forward so `tick` falls inside the rotation,
    /// migrating newly-in-range overflow entries into their buckets.
    fn rotate_to(&mut self, tick: Tick) {
        if tick < self.horizon() {
            return;
        }
        // Jump the base straight to the target's bucket boundary: with a
        // cached global minimum there is nothing due in between.
        self.base = (tick >> self.width_log2) << self.width_log2;
        let horizon = self.horizon();
        let mut i = 0;
        while i < self.overflow.len() {
            let (t, id) = self.overflow[i];
            if t < horizon {
                self.overflow.swap_remove(i);
                let b = self.bucket_of(t.max(self.base));
                self.buckets[b].push((t, id));
                self.occ[b / 64] |= 1u64 << (b % 64);
            } else {
                i += 1;
            }
        }
    }

    fn recompute_min(&mut self) {
        let mut m: Option<Tick> = None;
        self.visit_occupied(0, self.buckets.len(), &mut |t, _| {
            if m.is_none_or(|cur| t < cur) {
                m = Some(t);
            }
        });
        for &(t, _) in &self.overflow {
            if m.is_none_or(|cur| t < cur) {
                m = Some(t);
            }
        }
        self.min = m;
    }

    /// Visits every queued id in approximately ascending tick order:
    /// bucket by bucket from the window base (insertion order inside a
    /// bucket), then the overflow list. Exact order is deterministic for
    /// a deterministic insertion sequence; callers that need exact tick
    /// order use [`CalendarQueue::pop_min`].
    pub fn visit_ascending(&self, mut f: impl FnMut(Tick, u32)) {
        let start = self.bucket_of(self.base);
        let n = self.buckets.len();
        // Window order with wrap-around, as two occupancy-masked ranges.
        self.visit_occupied(start, n, &mut f);
        self.visit_occupied(0, start, &mut f);
        for &(t, id) in &self.overflow {
            f(t, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for the property tests (no external crates).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn drains_in_tick_order() {
        let mut q = CalendarQueue::new(3, 16);
        for (t, id) in [(100, 0), (5, 1), (64, 2), (5, 3), (1023, 4)] {
            q.insert(t, id);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop_min() {
            out.push(e);
        }
        // Ascending ticks; FIFO among equal ticks.
        assert_eq!(out, vec![(5, 1), (5, 3), (64, 2), (100, 0), (1023, 4)]);
    }

    #[test]
    fn random_sequences_match_heap_oracle() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = Rng(0x9e3779b97f4a7c15);
        for round in 0..50 {
            let mut q = CalendarQueue::new((round % 7) + 1, 1 << (round % 5).max(1));
            let mut oracle: BinaryHeap<Reverse<Tick>> = BinaryHeap::new();
            let n = 1 + (rng.next() % 200) as usize;
            for id in 0..n as u32 {
                // Mix near-term, mid-term and far-future ticks.
                let t = match rng.next() % 4 {
                    0 => rng.next() % 64,
                    1 => rng.next() % 4096,
                    2 => rng.next() % (1 << 20),
                    _ => rng.next() % (1 << 40),
                };
                q.insert(t, id);
                oracle.push(Reverse(t));
                assert_eq!(q.peek_min(), oracle.peek().map(|&Reverse(t)| t));
            }
            // Interleave pops and fresh inserts.
            let mut id = n as u32;
            while !q.is_empty() {
                let (t, _) = q.pop_min().expect("non-empty");
                let Reverse(ot) = oracle.pop().expect("oracle non-empty");
                assert_eq!(t, ot, "round {round}");
                assert_eq!(q.len(), oracle.len());
                if rng.next().is_multiple_of(3) {
                    let nt = t + rng.next() % (1 << 24);
                    q.insert(nt, id);
                    oracle.push(Reverse(nt));
                    id += 1;
                }
            }
        }
    }

    #[test]
    fn far_future_overflow_wraps_across_rotations() {
        // 8-tick buckets, 4 buckets -> 32-tick window. An entry 10 full
        // rotations out must sit in overflow, survive the wheel wrapping
        // past its bucket index repeatedly, and still drain in order.
        let mut q = CalendarQueue::new(3, 4);
        q.insert(2, 0);
        q.insert(320 + 2, 1); // same bucket index as tick 2, 10 rotations later
        q.insert(320 + 3, 2);
        assert_eq!(q.pop_min(), Some((2, 0)));
        // Window must rotate forward to reach the overflow entries; the
        // wrapped bucket index must not confuse them with the old window.
        assert_eq!(q.pop_min(), Some((322, 1)));
        assert_eq!(q.pop_min(), Some((323, 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn near_tick_max_saturates_without_panicking() {
        let mut q = CalendarQueue::new(4, 4);
        q.insert(Tick::MAX - 1, 0);
        q.insert(Tick::MAX, 1);
        q.insert(3, 2);
        assert_eq!(q.pop_min(), Some((3, 2)));
        assert_eq!(q.pop_min(), Some((Tick::MAX - 1, 0)));
        assert_eq!(q.pop_min(), Some((Tick::MAX, 1)));
    }

    #[test]
    fn visit_ascending_sees_every_entry() {
        let mut q = CalendarQueue::new(2, 8);
        for (t, id) in [(0, 0), (31, 1), (7, 2), (100_000, 3)] {
            q.insert(t, id);
        }
        let mut seen = Vec::new();
        q.visit_ascending(|t, id| seen.push((t, id)));
        assert_eq!(seen.len(), 4);
        let mut ids: Vec<u32> = seen.iter().map(|&(_, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // Overflow entries come last.
        assert_eq!(seen.last(), Some(&(100_000, 3)));
    }

    #[test]
    fn clear_to_moves_the_window() {
        let mut q = CalendarQueue::new(3, 4); // 8-tick buckets, 32-tick window
        q.insert(1_000_000, 0);
        q.clear_to(1_000_000);
        assert!(q.is_empty());
        // The window now covers the new region: a rebuild around the new
        // base keeps near-term entries bucketed instead of overflowed.
        q.insert(1_000_001, 1);
        q.insert(1_000_030, 2);
        assert_eq!(q.pop_min(), Some((1_000_001, 1)));
        assert_eq!(q.pop_min(), Some((1_000_030, 2)));
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut q = CalendarQueue::new(3, 4);
        q.insert(9, 0);
        q.insert(1 << 30, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_min(), None);
        assert_eq!(q.pop_min(), None);
    }
}
