//! A small deterministic RNG (SplitMix64) for simulator-internal decisions,
//! workload input generation, and the randomized property tests.
//!
//! The workspace has no external dependencies, so this generator is the
//! only randomness source — which also guarantees bit-identical input
//! reproducibility across platforms.

/// SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use distda_sim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift reduction; bias is negligible for simulator use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let seq: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let mut r = SplitMix64::new(7);
        for v in seq {
            assert_eq!(r.next_u64(), v);
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(123);
        for _ in 0..10_000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }
}
