//! Typed access to every `DISTDA_*` environment knob.
//!
//! All runtime configuration of the simulator goes through process
//! environment variables so that sweeps, tests and CI can flip behaviour
//! without plumbing flags through every constructor. This module is the
//! *single* place those variables are read and parsed; the rest of the
//! workspace calls the typed accessors below instead of
//! `std::env::var("DISTDA_...")` directly.
//!
//! | Knob | Values | Default | Effect |
//! |------|--------|---------|--------|
//! | `DISTDA_SKIP` | `0` off, else on | on | Idle skip-ahead in the run loop |
//! | `DISTDA_CHECK_SKIP` | `1` on | off | Run twice (skip on/off) and diff results |
//! | `DISTDA_SANITIZE` | `0` off, else on | `cfg!(debug_assertions)` | Invariant sanitizer |
//! | `DISTDA_VALIDATE` | `0` off, else on | off | Strict differential validation errors |
//! | `DISTDA_THREADS` | positive integer | autodetect | Sweep worker count |
//! | `DISTDA_TRACE` | `1`/`all`, prefix list, `0` | off | Tracing filter spec |
//! | `DISTDA_TRACE_CAP` | positive integer | 65536 | Per-component event-ring capacity |
//! | `DISTDA_OBS` | `0` off, else on | off | Scheduler self-profiling (per-component host-ns) |
//! | `DISTDA_PROGRESS` | `0` off, else on | off | Live sweep progress (stderr + JSONL stream) |
//! | `DISTDA_EXPLAIN` | `0` off, `1` on, `n>1` window ticks | off | Causal bottleneck attribution + windowed port sampling |
//!
//! Each accessor is a thin wrapper over a pure `parse_*` function taking
//! `Option<&str>`, so the parsing rules are unit-testable without touching
//! the process-global environment.

use crate::profile::Profiler;
use crate::sample::{Sampler, DEFAULT_WINDOW_CAP, DEFAULT_WINDOW_TICKS};
use distda_check::Sanitizer;
use distda_trace::{Tracer, DEFAULT_EVENT_CAP};

fn var(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// `DISTDA_SKIP` rule: on unless explicitly `"0"` (unset means on).
pub fn parse_skip(val: Option<&str>) -> bool {
    val != Some("0")
}

/// `DISTDA_CHECK_SKIP` rule: on only when exactly `"1"`.
pub fn parse_check_skip(val: Option<&str>) -> bool {
    val == Some("1")
}

/// `DISTDA_SANITIZE` rule: `"0"` forces off, any other set value forces
/// on, unset follows `cfg!(debug_assertions)`.
pub fn parse_sanitize(val: Option<&str>) -> bool {
    match val {
        Some(v) => v != "0",
        None => cfg!(debug_assertions),
    }
}

/// `DISTDA_VALIDATE` rule: on when set and not `"0"`.
pub fn parse_validate(val: Option<&str>) -> bool {
    val.is_some_and(|v| v != "0")
}

/// `DISTDA_THREADS` rule: a positive integer, anything else means
/// "unset" (autodetect).
pub fn parse_threads(val: Option<&str>) -> Option<usize> {
    val.and_then(|v| v.parse::<usize>().ok()).filter(|&n| n > 0)
}

/// `DISTDA_TRACE_CAP` rule: a parseable `usize`, else the default ring
/// capacity.
pub fn parse_trace_cap(val: Option<&str>) -> usize {
    val.and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(DEFAULT_EVENT_CAP)
}

/// Builds a [`Tracer`] from a `DISTDA_TRACE` spec and `DISTDA_TRACE_CAP`
/// value. An unset spec disables tracing outright (the cap is ignored).
pub fn parse_tracer(spec: Option<&str>, cap: Option<&str>) -> Tracer {
    match spec {
        None => Tracer::disabled(),
        Some(spec) => Tracer::with_filter_cap(spec, parse_trace_cap(cap)),
    }
}

/// `DISTDA_OBS` rule: on when set and not `"0"`.
pub fn parse_obs(val: Option<&str>) -> bool {
    val.is_some_and(|v| v != "0")
}

/// `DISTDA_PROGRESS` rule: on when set and not `"0"`.
pub fn parse_progress(val: Option<&str>) -> bool {
    val.is_some_and(|v| v != "0")
}

/// `DISTDA_EXPLAIN` rule: unset or `"0"` means off (`None`); any other
/// value turns explain on, with an integer `> 1` selecting the sampling
/// window size in base ticks and everything else (`"1"`, `"on"`, ...)
/// the default window.
pub fn parse_explain(val: Option<&str>) -> Option<u64> {
    match val {
        None | Some("0") => None,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 1 => Some(n),
            _ => Some(DEFAULT_WINDOW_TICKS),
        },
    }
}

/// Whether the run loop may skip ahead over idle ticks (`DISTDA_SKIP`).
pub fn skip() -> bool {
    parse_skip(var("DISTDA_SKIP").as_deref())
}

/// Whether runs should be executed twice — skip-ahead on and off — and
/// their results diffed (`DISTDA_CHECK_SKIP`).
pub fn check_skip() -> bool {
    parse_check_skip(var("DISTDA_CHECK_SKIP").as_deref())
}

/// Whether the invariant sanitizer records checks (`DISTDA_SANITIZE`).
pub fn sanitize() -> bool {
    parse_sanitize(var("DISTDA_SANITIZE").as_deref())
}

/// Whether differential validation mismatches are strict errors
/// (`DISTDA_VALIDATE`).
pub fn validate() -> bool {
    parse_validate(var("DISTDA_VALIDATE").as_deref())
}

/// Sweep worker count override (`DISTDA_THREADS`), `None` to autodetect.
pub fn threads() -> Option<usize> {
    parse_threads(var("DISTDA_THREADS").as_deref())
}

/// A [`Tracer`] per `DISTDA_TRACE` / `DISTDA_TRACE_CAP`; disabled when
/// `DISTDA_TRACE` is unset.
pub fn tracer() -> Tracer {
    parse_tracer(
        var("DISTDA_TRACE").as_deref(),
        var("DISTDA_TRACE_CAP").as_deref(),
    )
}

/// A [`Sanitizer`] per the `DISTDA_SANITIZE` policy.
pub fn sanitizer() -> Sanitizer {
    if sanitize() {
        Sanitizer::enabled()
    } else {
        Sanitizer::disabled()
    }
}

/// Whether scheduler self-profiling is requested (`DISTDA_OBS`).
pub fn obs() -> bool {
    parse_obs(var("DISTDA_OBS").as_deref())
}

/// Whether sweeps should report live progress (`DISTDA_PROGRESS`).
pub fn progress() -> bool {
    parse_progress(var("DISTDA_PROGRESS").as_deref())
}

/// A [`Profiler`] per the `DISTDA_OBS` policy.
pub fn profiler() -> Profiler {
    if obs() {
        Profiler::enabled()
    } else {
        Profiler::disabled()
    }
}

/// Sampling window size in base ticks when causal explanation is
/// requested (`DISTDA_EXPLAIN`), `None` when off.
pub fn explain() -> Option<u64> {
    parse_explain(var("DISTDA_EXPLAIN").as_deref())
}

/// A [`Sampler`] per the `DISTDA_EXPLAIN` policy: enabled with the
/// requested window size (bounded by the default ring capacity), or
/// disabled.
pub fn sampler() -> Sampler {
    match explain() {
        Some(w) => Sampler::enabled(w, DEFAULT_WINDOW_CAP),
        None => Sampler::disabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_defaults_on_and_only_zero_disables() {
        assert!(parse_skip(None));
        assert!(parse_skip(Some("1")));
        assert!(parse_skip(Some("yes")));
        assert!(!parse_skip(Some("0")));
    }

    #[test]
    fn check_skip_requires_exactly_one() {
        assert!(!parse_check_skip(None));
        assert!(!parse_check_skip(Some("0")));
        assert!(!parse_check_skip(Some("true")));
        assert!(parse_check_skip(Some("1")));
    }

    #[test]
    fn sanitize_follows_debug_assertions_when_unset() {
        assert_eq!(parse_sanitize(None), cfg!(debug_assertions));
        assert!(parse_sanitize(Some("1")));
        assert!(parse_sanitize(Some("anything")));
        assert!(!parse_sanitize(Some("0")));
    }

    #[test]
    fn validate_defaults_off() {
        assert!(!parse_validate(None));
        assert!(!parse_validate(Some("0")));
        assert!(parse_validate(Some("1")));
        assert!(parse_validate(Some("strict")));
    }

    #[test]
    fn threads_accepts_only_positive_integers() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("abc")), None);
        assert_eq!(parse_threads(Some("8")), Some(8));
    }

    #[test]
    fn trace_cap_falls_back_to_default() {
        assert_eq!(parse_trace_cap(None), DEFAULT_EVENT_CAP);
        assert_eq!(parse_trace_cap(Some("not-a-number")), DEFAULT_EVENT_CAP);
        assert_eq!(parse_trace_cap(Some("1024")), 1024);
    }

    #[test]
    fn tracer_spec_rules() {
        assert!(!parse_tracer(None, None).is_enabled());
        assert!(!parse_tracer(Some("0"), None).is_enabled());
        assert!(parse_tracer(Some("all"), None).is_enabled());
        assert!(parse_tracer(Some("1"), Some("256")).is_enabled());
        let t = parse_tracer(Some("mem,noc"), None);
        assert!(t.sink("mem.dram").on());
        assert!(!t.sink("machine").on());
    }

    #[test]
    fn obs_and_progress_default_off() {
        assert!(!parse_obs(None));
        assert!(!parse_obs(Some("0")));
        assert!(parse_obs(Some("1")));
        assert!(parse_obs(Some("profile")));
        assert!(!parse_progress(None));
        assert!(!parse_progress(Some("0")));
        assert!(parse_progress(Some("1")));
    }

    #[test]
    fn profiler_constructor_matches_policy() {
        assert_eq!(profiler().on(), obs());
    }

    #[test]
    fn explain_defaults_off_and_reads_window_size() {
        assert_eq!(parse_explain(None), None);
        assert_eq!(parse_explain(Some("0")), None);
        assert_eq!(parse_explain(Some("1")), Some(DEFAULT_WINDOW_TICKS));
        assert_eq!(parse_explain(Some("on")), Some(DEFAULT_WINDOW_TICKS));
        assert_eq!(parse_explain(Some("8192")), Some(8192));
    }

    #[test]
    fn sampler_constructor_matches_policy() {
        assert_eq!(sampler().on(), explain().is_some());
    }

    #[test]
    fn sanitizer_constructor_matches_policy() {
        // Can't portably mutate the environment in tests; at least check
        // the constructor agrees with the policy function.
        assert_eq!(sanitizer().on(), sanitize());
    }
}
