//! Canonical names for every handshaked port and blame-graph component
//! in the machine.
//!
//! Port names used to be assembled ad hoc at each export site — the
//! machine formatted `chan{g}` in three places, the memory system owned
//! `mem.out`/`mem.resp{N}`, the mesh owned `noc.inbox{N}` — so a rename
//! in one site would silently desynchronize runner report keys
//! (`port.<name>.stalls`), obs series labels (`distda_port_*`) and the
//! explain blame nodes that join on those names. This module is now the
//! *single* source of every name; export sites call the constructors
//! below and an invariant test in `distda-system` asserts that every
//! snapshot the machine produces is recognized by [`is_canonical`].
//!
//! Component names (the nodes of the explain blame graph) live here too,
//! because a blame edge is a (port, waiter component, blamed component)
//! triple and all three columns must agree across crates.

/// The machine-level injection port into the mesh (channel operands,
/// credits, MMIO).
pub const NET_OUT: &str = "net_out";

/// The memory system's outgoing mesh-injection port.
pub const MEM_OUT: &str = "mem.out";

/// Cross-partition operand channel `g` (global channel index).
pub fn chan(g: usize) -> String {
    format!("chan{g}")
}

/// The memory system's response port for requester port id `p`.
pub fn mem_resp(p: usize) -> String {
    format!("mem.resp{p}")
}

/// Mesh delivery inbox of node `n`.
pub fn noc_inbox(n: usize) -> String {
    format!("noc.inbox{n}")
}

/// Component name of accelerator engine slot `i` (matches the name the
/// engine registers with the scheduler).
pub fn engine(i: usize) -> String {
    format!("engine.{i}")
}

/// Component name of the host core.
pub const HOST: &str = "host";
/// Component name of the memory hierarchy.
pub const MEM: &str = "mem";
/// Component name of the mesh router.
pub const NOC: &str = "noc";
/// Component name of the inbox-delivery phase.
pub const DELIVERY: &str = "delivery";

/// Whether `name` is a port name this module can produce. The
/// numbered families require a pure decimal suffix (no sign, no empty
/// suffix), so a drifted call site like `chan_3` or `mem.resp` fails.
pub fn is_canonical(name: &str) -> bool {
    fn numbered(name: &str, prefix: &str) -> bool {
        name.strip_prefix(prefix)
            .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
    }
    name == NET_OUT
        || name == MEM_OUT
        || numbered(name, "chan")
        || numbered(name, "mem.resp")
        || numbered(name, "noc.inbox")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_produce_canonical_names() {
        for n in [
            chan(0),
            chan(17),
            mem_resp(3),
            noc_inbox(12),
            NET_OUT.to_string(),
            MEM_OUT.to_string(),
        ] {
            assert!(is_canonical(&n), "{n} should be canonical");
        }
    }

    #[test]
    fn drifted_names_are_rejected() {
        for n in [
            "chan",
            "chan_3",
            "chan3x",
            "mem.resp",
            "mem.resp-1",
            "noc.inbox",
            "netout",
            "mem_out",
            "engine.0",
        ] {
            assert!(!is_canonical(n), "{n} should not be canonical");
        }
    }

    #[test]
    fn engine_matches_scheduler_registration_format() {
        assert_eq!(engine(4), "engine.4");
    }
}
