//! Scheduler self-profiling: where does *host* wall-clock go inside a run?
//!
//! The tracer ([`distda_trace`]) answers "where does simulated time go";
//! this module answers the complementary fleet-telemetry question — which
//! component of the machine the *simulator itself* spends host nanoseconds
//! in, how many executed (non-skipped) ticks each component was scheduled
//! for, which component's `next_event` kept waking the machine, and how
//! much simulated time the skip-ahead fast path jumped over.
//!
//! A [`Profiler`] is the third member of the scheduler's
//! [`Instruments`](crate::component::Instruments) bundle, next to the
//! tracer and the sanitizer, with the same cost model: a disabled profiler
//! is a `None` inside a cheap cloneable handle, so the tick loop pays one
//! branch per tick and nothing else. Enabled (via `DISTDA_OBS` or
//! programmatically), the scheduler times every component's `tick()` with
//! the host monotonic clock and folds the numbers here.
//!
//! Profiling is measurement-only by construction: it reads the host clock
//! and counts scheduler decisions, but never influences them — simulated
//! results are bit-identical with the profiler on or off (enforced by the
//! observability determinism tests).
//!
//! The snapshot renders as a "perf top"-style table
//! ([`render_table`]):
//!
//! ```text
//! component         host_ms  host%   active_ticks   wakes  ns/tick
//! mesh               812.41  41.2%       1203441   88123     675
//! engine.2           401.77  20.4%        903441   41021     444
//! ...
//! ```

use crate::time::Tick;
use distda_trace::metrics::Series;
use std::sync::{Arc, Mutex};

/// Executed ticks per utilization-series window: every window the profiler
/// samples each component's share of the window's host nanoseconds.
pub const UTIL_WINDOW_TICKS: u64 = 1 << 16;

/// Maximum points retained per component utilization series.
pub const UTIL_SERIES_CAP: usize = 4096;

#[derive(Debug)]
struct SlotState {
    name: String,
    host_ns: u64,
    active_ticks: u64,
    wakes: u64,
    /// Host ns accumulated inside the current utilization window.
    window_ns: u64,
    util: Series,
}

#[derive(Debug)]
struct ProfState {
    slots: Vec<SlotState>,
    ticks_executed: u64,
    ticks_skipped: u64,
    skip_spans: u64,
    probes: u64,
    probe_ns: u64,
    window_ticks: u64,
}

impl ProfState {
    fn close_window(&mut self, now: Tick) {
        let total: u64 = self.slots.iter().map(|s| s.window_ns).sum();
        for s in &mut self.slots {
            let share = if total > 0 {
                s.window_ns as f64 / total as f64
            } else {
                0.0
            };
            s.util.sample(now, share);
            s.window_ns = 0;
        }
        self.window_ticks = 0;
    }
}

/// One component's profile, as captured in a [`ProfileSnapshot`].
#[derive(Debug, Clone)]
pub struct ComponentProfile {
    /// Component name (merged across registrations with the same name).
    pub name: String,
    /// Host nanoseconds spent inside this component's `tick()`.
    pub host_ns: u64,
    /// Executed (non-skipped) base ticks this component was scheduled for.
    pub active_ticks: u64,
    /// Times this component's `next_event` was the scheduler's chosen wake
    /// target (it was the unit keeping the machine busy or waking it next).
    pub wakes: u64,
    /// Change-sampled utilization series: at each window boundary, this
    /// component's share of the window's host nanoseconds.
    pub util: Vec<(Tick, f64)>,
}

/// Everything the self-profiler measured, in component registration order.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Per-component breakdown.
    pub comps: Vec<ComponentProfile>,
    /// Base ticks the scheduler actually executed component-by-component.
    pub ticks_executed: u64,
    /// Base ticks jumped over by idle skip-ahead.
    pub ticks_skipped: u64,
    /// Number of skip-ahead jumps (spans).
    pub skip_spans: u64,
    /// `next_wake` probes folded.
    pub probes: u64,
    /// Host nanoseconds spent inside `next_wake` probes.
    pub probe_ns: u64,
}

impl ProfileSnapshot {
    /// Total host nanoseconds across every component's `tick()`.
    pub fn total_host_ns(&self) -> u64 {
        self.comps.iter().map(|c| c.host_ns).sum()
    }
}

/// The self-profiling handle threaded through the scheduler's
/// [`Instruments`](crate::component::Instruments). Cheap to clone;
/// disabled by default.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    shared: Option<Arc<Mutex<ProfState>>>,
}

impl Profiler {
    /// A profiler that records nothing and costs one branch per tick.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live profiler with empty state.
    pub fn enabled() -> Self {
        Self {
            shared: Some(Arc::new(Mutex::new(ProfState {
                slots: Vec::new(),
                ticks_executed: 0,
                ticks_skipped: 0,
                skip_spans: 0,
                probes: 0,
                probe_ns: 0,
                window_ticks: 0,
            }))),
        }
    }

    /// Whether this profiler records anything at all.
    #[inline]
    pub fn on(&self) -> bool {
        self.shared.is_some()
    }

    /// Registers (or reuses, by name) a component slot and returns its
    /// index. Returns 0 on a disabled profiler — callers only use the
    /// index back through a profiler that is on.
    pub fn register(&self, name: &str) -> usize {
        let Some(shared) = &self.shared else { return 0 };
        let mut st = shared.lock().unwrap();
        if let Some(i) = st.slots.iter().position(|s| s.name == name) {
            return i;
        }
        st.slots.push(SlotState {
            name: name.to_string(),
            host_ns: 0,
            active_ticks: 0,
            wakes: 0,
            window_ns: 0,
            util: Series::new(UTIL_SERIES_CAP),
        });
        st.slots.len() - 1
    }

    /// Records one executed base tick at `now`: `(slot, host_ns)` per
    /// component ticked. One lock per tick.
    pub fn record_tick(&self, slot_ns: &[(usize, u64)], now: Tick) {
        let Some(shared) = &self.shared else { return };
        let mut st = shared.lock().unwrap();
        for &(slot, ns) in slot_ns {
            let s = &mut st.slots[slot];
            s.host_ns += ns;
            s.active_ticks += 1;
            s.window_ns += ns;
        }
        st.ticks_executed += 1;
        st.window_ticks += 1;
        if st.window_ticks >= UTIL_WINDOW_TICKS {
            st.close_window(now);
        }
    }

    /// Records one skip-ahead jump over `span` base ticks.
    pub fn record_skip(&self, span: u64) {
        let Some(shared) = &self.shared else { return };
        let mut st = shared.lock().unwrap();
        st.ticks_skipped += span;
        st.skip_spans += 1;
    }

    /// Records one `next_wake` probe: its host cost and, if any, the slot
    /// of the component whose event was the chosen wake target.
    pub fn record_probe(&self, ns: u64, woke: Option<usize>) {
        let Some(shared) = &self.shared else { return };
        let mut st = shared.lock().unwrap();
        st.probes += 1;
        st.probe_ns += ns;
        if let Some(slot) = woke {
            st.slots[slot].wakes += 1;
        }
    }

    /// Snapshot of everything measured so far (`None` when disabled). The
    /// current (partial) utilization window is closed into the series at
    /// tick `now_hint` so short runs still produce at least one sample.
    pub fn snapshot_at(&self, now_hint: Tick) -> Option<ProfileSnapshot> {
        let shared = self.shared.as_ref()?;
        let mut st = shared.lock().unwrap();
        if st.window_ticks > 0 {
            st.close_window(now_hint);
        }
        Some(ProfileSnapshot {
            comps: st
                .slots
                .iter()
                .map(|s| ComponentProfile {
                    name: s.name.clone(),
                    host_ns: s.host_ns,
                    active_ticks: s.active_ticks,
                    wakes: s.wakes,
                    util: s.util.points.clone(),
                })
                .collect(),
            ticks_executed: st.ticks_executed,
            ticks_skipped: st.ticks_skipped,
            skip_spans: st.skip_spans,
            probes: st.probes,
            probe_ns: st.probe_ns,
        })
    }

    /// [`Profiler::snapshot_at`] with the window closed at the last
    /// executed-tick count (good enough when no better clock is at hand).
    pub fn snapshot(&self) -> Option<ProfileSnapshot> {
        let hint = self
            .shared
            .as_ref()
            .map(|s| s.lock().unwrap().ticks_executed)
            .unwrap_or(0);
        self.snapshot_at(hint)
    }
}

/// Renders a "perf top"-style table of a snapshot: components sorted by
/// host nanoseconds, with scheduler-level totals as a footer.
pub fn render_table(snap: &ProfileSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let total_ns = snap.total_host_ns().max(1);
    writeln!(
        out,
        "{:<18} {:>10} {:>6} {:>14} {:>10} {:>8}",
        "component", "host_ms", "host%", "active_ticks", "wakes", "ns/tick"
    )
    .unwrap();
    let mut rows: Vec<&ComponentProfile> = snap.comps.iter().collect();
    rows.sort_by(|a, b| b.host_ns.cmp(&a.host_ns).then(a.name.cmp(&b.name)));
    for c in rows {
        writeln!(
            out,
            "{:<18} {:>10.3} {:>5.1}% {:>14} {:>10} {:>8}",
            c.name,
            c.host_ns as f64 / 1e6,
            100.0 * c.host_ns as f64 / total_ns as f64,
            c.active_ticks,
            c.wakes,
            c.host_ns / c.active_ticks.max(1),
        )
        .unwrap();
    }
    let total_ticks = snap.ticks_executed + snap.ticks_skipped;
    writeln!(
        out,
        "ticks: {} executed + {} skipped in {} spans = {} total ({:.1}% skipped)",
        snap.ticks_executed,
        snap.ticks_skipped,
        snap.skip_spans,
        total_ticks,
        100.0 * snap.ticks_skipped as f64 / total_ticks.max(1) as f64,
    )
    .unwrap();
    writeln!(
        out,
        "wake probes: {} taking {:.3} ms host",
        snap.probes,
        snap.probe_ns as f64 / 1e6
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(!p.on());
        assert_eq!(p.register("x"), 0);
        p.record_tick(&[(0, 5)], 0);
        p.record_skip(10);
        p.record_probe(3, Some(0));
        assert!(p.snapshot().is_none());
    }

    #[test]
    fn register_merges_by_name() {
        let p = Profiler::enabled();
        let a = p.register("mem");
        let b = p.register("noc");
        let a2 = p.register("mem");
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn ticks_and_wakes_accumulate() {
        let p = Profiler::enabled();
        let a = p.register("a");
        let b = p.register("b");
        p.record_tick(&[(a, 100), (b, 50)], 0);
        p.record_tick(&[(a, 100), (b, 50)], 1);
        p.record_skip(40);
        p.record_probe(7, Some(b));
        let s = p.snapshot().unwrap();
        assert_eq!(s.comps[a].host_ns, 200);
        assert_eq!(s.comps[a].active_ticks, 2);
        assert_eq!(s.comps[b].wakes, 1);
        assert_eq!(s.ticks_executed, 2);
        assert_eq!(s.ticks_skipped, 40);
        assert_eq!(s.skip_spans, 1);
        assert_eq!(s.probes, 1);
        assert_eq!(s.probe_ns, 7);
        assert_eq!(s.total_host_ns(), 300);
    }

    #[test]
    fn snapshot_closes_partial_window_into_util_series() {
        let p = Profiler::enabled();
        let a = p.register("a");
        let b = p.register("b");
        p.record_tick(&[(a, 300), (b, 100)], 5);
        let s = p.snapshot_at(5).unwrap();
        assert_eq!(s.comps[a].util, vec![(5, 0.75)]);
        assert_eq!(s.comps[b].util, vec![(5, 0.25)]);
    }

    #[test]
    fn table_renders_sorted_with_footer() {
        let p = Profiler::enabled();
        let a = p.register("small");
        let b = p.register("big");
        p.record_tick(&[(a, 10), (b, 990)], 0);
        let s = p.snapshot().unwrap();
        let t = render_table(&s);
        let big_at = t.find("big").unwrap();
        let small_at = t.find("small").unwrap();
        assert!(big_at < small_at, "rows must sort by host_ns:\n{t}");
        assert!(t.contains("executed"));
        assert!(t.contains("wake probes"));
    }

    #[test]
    fn invariant_active_ticks_bounded_by_executed() {
        let p = Profiler::enabled();
        let a = p.register("a");
        p.record_tick(&[(a, 1)], 0);
        p.record_tick(&[], 1); // a registered but not ticked this round
        let s = p.snapshot().unwrap();
        assert!(s.comps.iter().all(|c| c.active_ticks <= s.ticks_executed));
        let sum: u64 = s.comps.iter().map(|c| c.active_ticks).sum();
        assert!(sum <= s.ticks_executed * s.comps.len() as u64);
    }
}
