//! Windowed time-series sampling of port and counter state, in a
//! bounded ring.
//!
//! The explain layer needs to know not just *that* a port accumulated
//! stall cycles but *when*: a kernel that is memory-bound for its first
//! half and channel-bound for its second looks identical to a uniformly
//! mixed one in the end-of-run totals. A [`Sampler`] records, at fixed
//! simulated-tick window boundaries, the **cumulative** statistics of
//! every named port plus a set of named counters; consumers difference
//! adjacent windows to recover per-window rates.
//!
//! Design rules (mirroring the tracer and profiler):
//!
//! * **Free when disabled.** A disabled sampler is a `None` — the only
//!   cost to a host embedding one is an inlined null check, and nothing
//!   is ever recorded, so runs with sampling off are byte-identical to
//!   runs on a build without the sampler.
//! * **Deterministic.** Boundaries are simulated ticks, never host
//!   time. Recording the cumulative state *at* the boundary tick makes
//!   the series invariant under idle skip-ahead: skipped ticks are
//!   provably no-ops, so the state at the boundary is bit-identical
//!   whether the scheduler stepped or jumped there.
//! * **Bounded.** The ring holds at most `cap` windows. When it fills,
//!   every other window is dropped and the window size doubles — since
//!   records are cumulative, discarding intermediate boundaries loses
//!   resolution, never mass. A run of any length therefore costs
//!   `O(cap · ports)` memory.
//!
//! Ports and counters are keyed by name, first-seen order, so the
//! population may grow mid-run (engines and operand channels are
//! configured after the machine is built); windows recorded before a
//! name existed implicitly hold zero for it, which is exactly the value
//! of a cumulative counter before its owner was born.

use crate::port::PortSnapshot;
use crate::time::Tick;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default window size in base ticks (`DISTDA_EXPLAIN=1`).
pub const DEFAULT_WINDOW_TICKS: u64 = 4096;

/// Default ring capacity in windows.
pub const DEFAULT_WINDOW_CAP: usize = 512;

/// One port's cumulative statistics at a window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortPoint {
    /// Total elements ever accepted by the port.
    pub pushed: u64,
    /// Total producer stall cycles charged to the port.
    pub stalls: u64,
    /// Occupancy at the boundary tick.
    pub len: u64,
}

/// Cumulative state frozen at one window boundary. `ports` and
/// `counters` are indexed by the dump's `port_names`/`counter_names`;
/// entries past the end of either vec are implicitly zero (the name was
/// registered after this window was recorded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// The boundary tick this record was frozen at.
    pub at: Tick,
    /// Per-port cumulative statistics, indexed like `port_names`.
    pub ports: Vec<PortPoint>,
    /// Named cumulative counters, indexed like `counter_names`.
    pub counters: Vec<u64>,
}

/// A consistent copy of everything a sampler recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleDump {
    /// Window size in base ticks at the end of the run (doubles each
    /// time the ring coalesces).
    pub window_ticks: u64,
    /// Port names, first-seen order; index space of `Window::ports`.
    pub port_names: Vec<String>,
    /// Counter names, first-seen order; index space of
    /// `Window::counters`.
    pub counter_names: Vec<String>,
    /// The recorded windows, oldest first, boundary ticks strictly
    /// increasing.
    pub windows: Vec<Window>,
    /// How many times the ring halved itself to stay within `cap`.
    pub coalesced: u32,
}

impl SampleDump {
    /// The cumulative [`PortPoint`] of `name` at window index `w`
    /// (zero when the port did not exist yet).
    pub fn port_at(&self, w: usize, name: &str) -> PortPoint {
        let Some(i) = self.port_names.iter().position(|n| n == name) else {
            return PortPoint::default();
        };
        self.windows[w].ports.get(i).copied().unwrap_or_default()
    }

    /// The cumulative counter `name` at window index `w` (zero when the
    /// counter did not exist yet).
    pub fn counter_at(&self, w: usize, name: &str) -> u64 {
        let Some(i) = self.counter_names.iter().position(|n| n == name) else {
            return 0;
        };
        self.windows[w].counters.get(i).copied().unwrap_or(0)
    }
}

#[derive(Debug)]
struct SamplerState {
    window_ticks: u64,
    cap: usize,
    next_boundary: Tick,
    port_index: HashMap<String, usize>,
    port_names: Vec<String>,
    counter_index: HashMap<String, usize>,
    counter_names: Vec<String>,
    windows: Vec<Window>,
    coalesced: u32,
}

impl SamplerState {
    fn intern_port(&mut self, name: &str) -> usize {
        if let Some(&i) = self.port_index.get(name) {
            return i;
        }
        let i = self.port_names.len();
        self.port_names.push(name.to_string());
        self.port_index.insert(name.to_string(), i);
        i
    }

    fn intern_counter(&mut self, name: &str) -> usize {
        if let Some(&i) = self.counter_index.get(name) {
            return i;
        }
        let i = self.counter_names.len();
        self.counter_names.push(name.to_string());
        self.counter_index.insert(name.to_string(), i);
        i
    }

    fn coalesce(&mut self) {
        // Keep every second boundary (the later of each pair) and double
        // the window: cumulative records make this lossless in mass and
        // uniform in spacing.
        let mut keep = false;
        self.windows.retain(|_| {
            keep = !keep;
            !keep
        });
        self.window_ticks *= 2;
        self.coalesced += 1;
    }
}

/// A cheap cloneable handle to a windowed sampling ring; `None` inside
/// means disabled (the default) and costs one inlined null check.
#[derive(Debug, Clone, Default)]
pub struct Sampler(Option<Arc<Mutex<SamplerState>>>);

impl Sampler {
    /// A sampler that records nothing and reports no boundaries.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A sampler with `window_ticks`-sized windows and a ring of at
    /// most `cap` windows.
    ///
    /// # Panics
    ///
    /// Panics if `window_ticks` is zero or `cap < 2` (coalescing needs
    /// room to halve).
    pub fn enabled(window_ticks: u64, cap: usize) -> Self {
        assert!(window_ticks > 0, "window size must be nonzero");
        assert!(cap >= 2, "ring must hold at least two windows");
        Self(Some(Arc::new(Mutex::new(SamplerState {
            window_ticks,
            cap,
            next_boundary: window_ticks,
            port_index: HashMap::new(),
            port_names: Vec::new(),
            counter_index: HashMap::new(),
            counter_names: Vec::new(),
            windows: Vec::new(),
            coalesced: 0,
        }))))
    }

    /// Whether this sampler records anything.
    #[inline]
    pub fn on(&self) -> bool {
        self.0.is_some()
    }

    /// The next boundary tick a host should record at
    /// ([`Tick::MAX`] when disabled — never wakes anything).
    pub fn next_boundary(&self) -> Tick {
        match &self.0 {
            Some(s) => s.lock().unwrap().next_boundary,
            None => Tick::MAX,
        }
    }

    /// Records the cumulative state at `at` if `at` has reached the
    /// next boundary, and advances the boundary past `at`. A no-op when
    /// disabled or before the boundary, so hosts may call this every
    /// tick.
    pub fn record_at(&self, at: Tick, ports: &[PortSnapshot], counters: &[(&str, u64)]) {
        let Some(s) = &self.0 else { return };
        let mut s = s.lock().unwrap();
        if at < s.next_boundary {
            return;
        }
        let mut pts = vec![PortPoint::default(); s.port_names.len()];
        for p in ports {
            let i = s.intern_port(&p.name);
            if i >= pts.len() {
                pts.resize(i + 1, PortPoint::default());
            }
            pts[i] = PortPoint {
                pushed: p.pushed,
                stalls: p.stalls,
                len: p.len as u64,
            };
        }
        let mut cts = vec![0u64; s.counter_names.len()];
        for (name, v) in counters {
            let i = s.intern_counter(name);
            if i >= cts.len() {
                cts.resize(i + 1, 0);
            }
            cts[i] = *v;
        }
        s.windows.push(Window {
            at,
            ports: pts,
            counters: cts,
        });
        if s.windows.len() >= s.cap {
            s.coalesce();
        }
        // Next boundary strictly after `at`, on the (possibly doubled)
        // window grid.
        let w = s.window_ticks;
        s.next_boundary = (at / w + 1) * w;
    }

    /// A consistent copy of everything recorded so far (`None` when
    /// disabled).
    pub fn dump(&self) -> Option<SampleDump> {
        let s = self.0.as_ref()?.lock().unwrap();
        Some(SampleDump {
            window_ticks: s.window_ticks,
            port_names: s.port_names.clone(),
            counter_names: s.counter_names.clone(),
            windows: s.windows.clone(),
            coalesced: s.coalesced,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::Channel;

    fn snap(name: &str, pushed: u64, stalls: u64) -> PortSnapshot {
        let mut ch = Channel::<u64>::unbounded();
        for v in 0..pushed {
            ch.tx().offer(v).unwrap();
        }
        ch.note_stalls(stalls);
        ch.snapshot(name)
    }

    #[test]
    fn disabled_sampler_is_inert() {
        let s = Sampler::disabled();
        assert!(!s.on());
        assert_eq!(s.next_boundary(), Tick::MAX);
        s.record_at(1_000_000, &[snap("p", 1, 1)], &[("c", 1)]);
        assert!(s.dump().is_none());
    }

    #[test]
    fn records_only_at_boundaries_and_advances() {
        let s = Sampler::enabled(100, 16);
        s.record_at(50, &[snap("p", 1, 0)], &[]);
        assert!(s.dump().unwrap().windows.is_empty());
        s.record_at(100, &[snap("p", 2, 1)], &[("busy", 7)]);
        assert_eq!(s.next_boundary(), 200);
        s.record_at(150, &[snap("p", 3, 1)], &[("busy", 8)]);
        let d = s.dump().unwrap();
        assert_eq!(d.windows.len(), 1);
        assert_eq!(d.port_at(0, "p").pushed, 2);
        assert_eq!(d.counter_at(0, "busy"), 7);
    }

    #[test]
    fn boundary_overshoot_lands_back_on_the_grid() {
        let s = Sampler::enabled(100, 16);
        // A skip-ahead host might first observe the boundary late.
        s.record_at(130, &[], &[]);
        assert_eq!(s.next_boundary(), 200);
        s.record_at(200, &[], &[]);
        assert_eq!(s.next_boundary(), 300);
        let d = s.dump().unwrap();
        assert_eq!(d.windows[0].at, 130);
        assert_eq!(d.windows[1].at, 200);
    }

    #[test]
    fn late_born_ports_read_zero_in_earlier_windows() {
        let s = Sampler::enabled(10, 16);
        s.record_at(10, &[snap("a", 5, 0)], &[]);
        s.record_at(20, &[snap("a", 6, 0), snap("b", 2, 1)], &[("k", 3)]);
        let d = s.dump().unwrap();
        assert_eq!(d.port_at(0, "b"), PortPoint::default());
        assert_eq!(d.port_at(1, "b").stalls, 1);
        assert_eq!(d.counter_at(0, "k"), 0);
        assert_eq!(d.counter_at(1, "k"), 3);
    }

    #[test]
    fn ring_coalesces_to_stay_bounded() {
        let s = Sampler::enabled(10, 8);
        for i in 1..=64u64 {
            s.record_at(i * 10, &[snap("p", i, i)], &[]);
        }
        let d = s.dump().unwrap();
        assert!(
            d.windows.len() < 8,
            "ring stayed bounded: {}",
            d.windows.len()
        );
        assert!(d.coalesced >= 3);
        assert!(d.window_ticks >= 80);
        // Boundaries stay strictly increasing and the final cumulative
        // value survives coalescing.
        assert!(d.windows.windows(2).all(|w| w[0].at < w[1].at));
        assert_eq!(d.windows.last().unwrap().at, 640);
        assert_eq!(d.port_at(d.windows.len() - 1, "p").pushed, 64);
    }

    #[test]
    fn dump_is_deterministic_across_clones() {
        let s = Sampler::enabled(10, 8);
        let s2 = s.clone();
        s.record_at(10, &[snap("p", 1, 0)], &[("c", 1)]);
        s2.record_at(20, &[snap("p", 2, 1)], &[("c", 2)]);
        assert_eq!(s.dump(), s2.dump());
    }
}
