//! # distda-sim
//!
//! Deterministic, cycle-stepped simulation primitives for the Dist-DA
//! reproduction: a multi-rate clock model, bounded FIFOs with credit
//! semantics, statistics reporting, and a seedable RNG.
//!
//! All components in the simulated machine advance on a shared *base tick*
//! that is the least common multiple of every clock frequency used in the
//! paper's evaluation (1, 1.5, 2 and 3 GHz), i.e. a 6 GHz base clock.
//! A [`ClockDomain`] converts between base ticks and domain cycles, which is
//! how the paper's clock-sensitivity study (Figure 13) mixes a 2 GHz host
//! with accelerators clocked from 1 to 3 GHz.
//!
//! ```
//! use distda_sim::time::{ClockDomain, GHZ_BASE};
//! let host = ClockDomain::from_ghz(2.0);
//! assert_eq!(host.period_ticks(), 3); // 6 GHz base / 2 GHz = 3 ticks
//! assert!(host.fires_at(0) && !host.fires_at(1) && host.fires_at(3));
//! assert_eq!(GHZ_BASE, 6.0);
//! ```

pub mod arena;
pub mod calendar;
pub mod component;
pub mod conformance;
pub mod env;
pub mod fifo;
pub mod port;
pub mod port_names;
pub mod profile;
pub mod rng;
pub mod sample;
pub mod time;

/// Statistics reporting ([`Report`], [`geomean`]).
///
/// The implementation lives in `distda-trace` (the lowest layer of the
/// instrumentation stack) so that tracing can build reports without
/// depending on this crate; re-exported here because `distda_sim::stats`
/// is the historical path every consumer uses.
pub use distda_trace::stats;

pub use arena::{Arena, Handle};
pub use calendar::CalendarQueue;
pub use component::{Component, Instruments, Scheduler, Stop};
pub use fifo::Fifo;
pub use port::{Channel, CreditLoop, PortSnapshot, RxPort, TxPort};
pub use profile::{ProfileSnapshot, Profiler};
pub use rng::SplitMix64;
pub use sample::{SampleDump, Sampler};
pub use stats::{geomean, Report};
pub use time::{ClockDomain, Tick};
