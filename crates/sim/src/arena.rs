//! A per-run message arena: a slab with generation-checked handles.
//!
//! Request/response bookkeeping in the modeled machine is
//! allocate-on-issue, free-on-complete with bounded occupancy (MSHR
//! counts, outstanding-request windows). A growable slab with an
//! intrusive free list serves that pattern without touching the global
//! allocator per event: slots are reused, and each reuse bumps a
//! generation counter so a stale handle (a duplicated response, a
//! response for a retired request) is *detected* instead of silently
//! reading another message's slot.
//!
//! Handles pack `(index, generation)` into a single `u64`, so they travel
//! for free in the `id` field of memory requests and NoC payloads.

/// A generation-checked slot reference. Packs into/from a `u64` for
/// transport in message id fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handle {
    index: u32,
    generation: u32,
}

impl Handle {
    /// The slot index (stable for the lifetime of the allocation).
    pub fn index(self) -> u32 {
        self.index
    }

    /// Packs the handle into a `u64` (`generation << 32 | index`).
    pub fn to_bits(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }

    /// Unpacks a handle from [`Handle::to_bits`] form.
    pub fn from_bits(bits: u64) -> Self {
        Self {
            index: bits as u32,
            generation: (bits >> 32) as u32,
        }
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    /// `Some` while allocated; `None` while on the free list.
    value: Option<T>,
}

/// The slab. See the module docs.
///
/// # Examples
///
/// ```
/// use distda_sim::arena::Arena;
/// let mut a = Arena::new();
/// let h = a.alloc("in flight");
/// assert_eq!(a.get(h), Some(&"in flight"));
/// assert_eq!(a.take(h), Some("in flight"));
/// // The handle is dead: the slot will be reused under a new generation.
/// assert_eq!(a.take(h), None);
/// let h2 = a.alloc("reused");
/// assert_eq!(h2.index(), h.index());
/// assert_ne!(h2, h);
/// ```
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty arena with room for `n` messages before any slab growth.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            slots: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            len: 0,
        }
    }

    /// Live allocations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no allocation is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, reusing a freed slot when one exists.
    pub fn alloc(&mut self, value: T) -> Handle {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free-list slot still occupied");
            slot.value = Some(value);
            return Handle {
                index,
                generation: slot.generation,
            };
        }
        let index = u32::try_from(self.slots.len()).expect("arena overflow");
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        Handle {
            index,
            generation: 0,
        }
    }

    /// The live value behind `h`, or `None` if the handle is stale (its
    /// slot was freed, possibly reused under a newer generation).
    pub fn get(&self, h: Handle) -> Option<&T> {
        let slot = self.slots.get(h.index as usize)?;
        (slot.generation == h.generation)
            .then_some(slot.value.as_ref())
            .flatten()
    }

    /// Mutable [`Arena::get`].
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut T> {
        let slot = self.slots.get_mut(h.index as usize)?;
        (slot.generation == h.generation)
            .then_some(slot.value.as_mut())
            .flatten()
    }

    /// Frees `h`, returning its value; `None` (and no effect) for a stale
    /// handle. The slot's generation bumps so every outstanding copy of
    /// `h` is dead from here on.
    pub fn take(&mut self, h: Handle) -> Option<T> {
        let slot = self.slots.get_mut(h.index as usize)?;
        if slot.generation != h.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(h.index);
        self.len -= 1;
        Some(value)
    }

    /// Iterates over live `(handle, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    Handle {
                        index: i as u32,
                        generation: s.generation,
                    },
                    v,
                )
            })
        })
    }

    /// Frees every live allocation (generations bump, so all outstanding
    /// handles die).
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.value.take().is_some() {
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_take_roundtrip() {
        let mut a = Arena::new();
        let h1 = a.alloc(10u64);
        let h2 = a.alloc(20u64);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h1), Some(&10));
        assert_eq!(a.get_mut(h2).map(|v| std::mem::replace(v, 21)), Some(20));
        assert_eq!(a.take(h2), Some(21));
        assert_eq!(a.take(h1), Some(10));
        assert!(a.is_empty());
    }

    #[test]
    fn stale_handles_are_rejected_after_reuse() {
        let mut a = Arena::new();
        let h = a.alloc("first");
        assert_eq!(a.take(h), Some("first"));
        let h2 = a.alloc("second");
        // Same slot, new generation: the old handle must not alias.
        assert_eq!(h.index(), h2.index());
        assert_eq!(a.get(h), None);
        assert_eq!(a.take(h), None);
        assert_eq!(a.get(h2), Some(&"second"));
    }

    #[test]
    fn bits_roundtrip_and_survive_transport() {
        let mut a = Arena::new();
        let h = a.alloc(7i32);
        let wire = h.to_bits();
        let back = Handle::from_bits(wire);
        assert_eq!(back, h);
        assert_eq!(a.take(back), Some(7));
        // A handle forged from the dead wire value is rejected too.
        assert_eq!(a.take(Handle::from_bits(wire)), None);
    }

    #[test]
    fn slots_are_reused_not_grown() {
        let mut a = Arena::with_capacity(4);
        let mut handles = Vec::new();
        for round in 0..100 {
            for i in 0..4 {
                handles.push(a.alloc(round * 10 + i));
            }
            for h in handles.drain(..) {
                assert!(a.take(h).is_some());
            }
        }
        // A bounded-occupancy workload never needs more slots than its
        // high-water mark.
        assert_eq!(a.slots.len(), 4);
    }

    #[test]
    fn iter_and_clear() {
        let mut a = Arena::new();
        let h1 = a.alloc(1);
        let _h2 = a.alloc(2);
        a.take(h1).unwrap();
        let live: Vec<i32> = a.iter().map(|(_, &v)| v).collect();
        assert_eq!(live, vec![2]);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.iter().count(), 0);
    }
}
