//! Simulated time: base ticks and per-component clock domains.
//!
//! The global simulation advances in *base ticks* of a 6 GHz virtual clock
//! (one tick = 1/6 ns). Every modeled frequency in the evaluation divides
//! 6 GHz evenly, so components fire on exact tick boundaries and the
//! simulation stays deterministic across clock sweeps.

/// A point in simulated time, measured in 6 GHz base ticks.
pub type Tick = u64;

/// Base clock frequency in GHz that `Tick` counts cycles of.
pub const GHZ_BASE: f64 = 6.0;

/// Number of base ticks per nanosecond of simulated time.
pub const TICKS_PER_NS: u64 = 6;

/// A clock domain: a component frequency expressed as a base-tick period.
///
/// # Examples
///
/// ```
/// use distda_sim::time::ClockDomain;
/// let cgra = ClockDomain::from_ghz(1.0);
/// assert_eq!(cgra.period_ticks(), 6);
/// assert_eq!(cgra.cycles_in(12), 2);
/// assert_eq!(cgra.ticks_for_cycles(5), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    period: u64,
}

impl ClockDomain {
    /// Creates a domain from a frequency in GHz.
    ///
    /// # Panics
    ///
    /// Panics if the frequency does not evenly divide the 6 GHz base clock
    /// (the supported set is 0.5, 0.75, 1, 1.5, 2, 3 and 6 GHz).
    pub fn from_ghz(ghz: f64) -> Self {
        let period = GHZ_BASE / ghz;
        assert!(
            (period.fract()).abs() < 1e-9 && period >= 1.0,
            "frequency {ghz} GHz does not divide the {GHZ_BASE} GHz base clock"
        );
        Self {
            period: period as u64,
        }
    }

    /// Creates a domain directly from a base-tick period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn from_period_ticks(period: u64) -> Self {
        assert!(period > 0, "clock period must be nonzero");
        Self { period }
    }

    /// The domain frequency in GHz.
    pub fn ghz(self) -> f64 {
        GHZ_BASE / self.period as f64
    }

    /// Base ticks per domain cycle.
    pub fn period_ticks(self) -> u64 {
        self.period
    }

    /// Whether this domain has a rising edge at base tick `t`.
    pub fn fires_at(self, t: Tick) -> bool {
        t.is_multiple_of(self.period)
    }

    /// Number of complete domain cycles elapsed by base tick `t`.
    pub fn cycles_in(self, t: Tick) -> u64 {
        t / self.period
    }

    /// Base ticks needed for `cycles` domain cycles.
    pub fn ticks_for_cycles(self, cycles: u64) -> Tick {
        cycles * self.period
    }

    /// The first tick `>= t` at which this domain fires.
    pub fn next_edge(self, t: Tick) -> Tick {
        t.div_ceil(self.period) * self.period
    }
}

/// Combines two optional wake-up times into the earliest one.
///
/// This is the reduction operator of the `next_event(now) -> Option<Tick>`
/// protocol: each component reports the earliest tick at which it could do
/// observable work (`None` = only external input can wake it), and the
/// scheduler folds the candidates with `earliest` to find the next tick the
/// machine must actually simulate.
///
/// # Examples
///
/// ```
/// use distda_sim::time::earliest;
/// assert_eq!(earliest(Some(5), Some(3)), Some(3));
/// assert_eq!(earliest(None, Some(7)), Some(7));
/// assert_eq!(earliest::<u64>(None, None), None);
/// ```
pub fn earliest<T: Ord>(a: Option<T>, b: Option<T>) -> Option<T> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl Default for ClockDomain {
    /// The paper's host frequency, 2 GHz.
    fn default() -> Self {
        Self::from_ghz(2.0)
    }
}

/// Converts a tick count to nanoseconds of simulated time.
pub fn ticks_to_ns(t: Tick) -> f64 {
    t as f64 / TICKS_PER_NS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_periods_match_paper_frequencies() {
        assert_eq!(ClockDomain::from_ghz(1.0).period_ticks(), 6);
        assert_eq!(ClockDomain::from_ghz(1.5).period_ticks(), 4);
        assert_eq!(ClockDomain::from_ghz(2.0).period_ticks(), 3);
        assert_eq!(ClockDomain::from_ghz(3.0).period_ticks(), 2);
        assert_eq!(ClockDomain::from_ghz(6.0).period_ticks(), 1);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn rejects_non_divisor_frequency() {
        let _ = ClockDomain::from_ghz(2.5);
    }

    #[test]
    fn fires_on_exact_multiples_only() {
        let d = ClockDomain::from_ghz(2.0);
        let edges: Vec<Tick> = (0..12).filter(|&t| d.fires_at(t)).collect();
        assert_eq!(edges, vec![0, 3, 6, 9]);
    }

    #[test]
    fn next_edge_rounds_up() {
        let d = ClockDomain::from_ghz(1.0);
        assert_eq!(d.next_edge(0), 0);
        assert_eq!(d.next_edge(1), 6);
        assert_eq!(d.next_edge(6), 6);
        assert_eq!(d.next_edge(7), 12);
    }

    #[test]
    fn cycles_and_ticks_roundtrip() {
        let d = ClockDomain::from_ghz(3.0);
        for c in [0u64, 1, 10, 1000] {
            assert_eq!(d.cycles_in(d.ticks_for_cycles(c)), c);
        }
    }

    #[test]
    fn ghz_roundtrip() {
        for f in [1.0, 1.5, 2.0, 3.0] {
            assert!((ClockDomain::from_ghz(f).ghz() - f).abs() < 1e-12);
        }
    }

    #[test]
    fn ns_conversion() {
        assert_eq!(ticks_to_ns(6), 1.0);
        assert_eq!(ticks_to_ns(3), 0.5);
    }

    #[test]
    fn default_is_host_clock() {
        assert_eq!(ClockDomain::default().period_ticks(), 3);
    }
}
