//! Reusable conformance harness for [`Component`] implementations.
//!
//! The scheduler's skip-ahead is only sound if every component honours the
//! [`Component`] protocol contract; a component that reports wake times in
//! the past, or promises a wake it then fails to act on, silently breaks
//! bit-identity between skipping and non-skipping runs. This module drives
//! a [`Scheduler`] exactly as the run loops do while checking the contract
//! at every decision point:
//!
//! - **wake-in-past** — [`Component::next_event`] must report a tick
//!   `>= now`.
//! - **stale-wake** — after jumping to the promised global wake tick `w`,
//!   a re-probe must report `Some(w)` again (some component really does
//!   have observable work there), *unless* the jump landed on a completion
//!   instant, in which case every component must be quiescent.
//! - **eventless-active** — when the global wake fold returns `None` (no
//!   component will ever act again without input), every component must be
//!   quiescent; a non-quiescent component with no scheduled event is a
//!   liveness bug (e.g. produced responses nobody will ever collect).
//! - **no-quiescence** — [`run_to_quiescence`] must reach global
//!   quiescence within its budget; exhausting it means ticking at the
//!   promised wake times is not making progress.
//!
//! The harness respects the scheduler's skip setting: with skip on it
//! exercises the jump/re-probe path, with skip off the tick-by-tick path.
//! Conformance suites should run both and compare final times — the
//! protocol guarantees they agree.

use crate::component::Scheduler;
use crate::port::PortSnapshot;
use crate::time::{earliest, Tick};

#[cfg(doc)]
use crate::component::Component;
#[cfg(doc)]
use crate::port::{Channel, RxPort, TxPort};

/// One observed violation of the component protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the offending component (or `"scheduler"` for global
    /// rules).
    pub comp: String,
    /// Which rule broke: `"wake-in-past"`, `"stale-wake"`,
    /// `"eventless-active"`, `"no-quiescence"`, or one of the port
    /// handshake rules from [`check_ports`] (`"port-no-loss"`,
    /// `"port-capacity"`, `"port-drain"`).
    pub rule: &'static str,
    /// Tick at which the violation was observed.
    pub now: Tick,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} at tick {}: {}",
            self.rule, self.comp, self.now, self.detail
        )
    }
}

/// Checks the probe-time rules once at the scheduler's current tick:
/// every component's wake is `>= now`, and if no component has any
/// scheduled event, every component is quiescent.
pub fn probe_violations<W>(sched: &Scheduler<W>, world: &W) -> Vec<Violation> {
    let now = sched.now();
    let mut out = Vec::new();
    let mut fold: Option<Tick> = None;
    for comp in sched.components() {
        let cand = comp.next_event(now, world);
        if let Some(c) = cand {
            if c < now {
                out.push(Violation {
                    comp: comp.name().to_string(),
                    rule: "wake-in-past",
                    now,
                    detail: format!("next_event reported {c} < now {now}"),
                });
            }
        }
        fold = earliest(fold, cand);
    }
    if fold.is_none() {
        for comp in sched.components() {
            if !comp.is_quiescent(now, world) {
                out.push(Violation {
                    comp: comp.name().to_string(),
                    rule: "eventless-active",
                    now,
                    detail: "no component has a scheduled event, yet this one is not quiescent"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// The global wake fold, computed without the sanitizer side effects of
/// [`Scheduler::next_wake`] and without its early exit (so `probe` and the
/// run loops agree on the minimum).
fn wake_fold<W>(sched: &Scheduler<W>, world: &W) -> Option<Tick> {
    let now = sched.now();
    sched
        .components()
        .fold(None, |acc, c| earliest(acc, c.next_event(now, world)))
}

/// After a jump to the promised wake tick, either the promise holds on
/// re-probe or the machine has fully completed.
fn check_jump<W>(sched: &Scheduler<W>, world: &W, out: &mut Vec<Violation>) {
    let now = sched.now();
    match wake_fold(sched, world) {
        Some(w) if w == now => {}
        None if sched.quiescent(world) => {}
        other => out.push(Violation {
            comp: "scheduler".to_string(),
            rule: "stale-wake",
            now,
            detail: format!(
                "jumped to promised wake tick but re-probe says {other:?} and the machine is not quiescent"
            ),
        }),
    }
}

/// Drives the scheduler for exactly `ticks` simulated base ticks,
/// checking the protocol at every decision point. Skip jumps follow the
/// scheduler's own skip setting. Returns all observed violations.
pub fn run_for<W>(sched: &mut Scheduler<W>, world: &mut W, ticks: u64) -> Vec<Violation> {
    let target = sched.now() + ticks;
    let mut out = Vec::new();
    while sched.now() < target {
        out.extend(probe_violations(sched, world));
        match wake_fold(sched, world) {
            None => {
                // Nothing will ever happen again (probe_violations has
                // already flagged any non-quiescent component); jump to
                // the target.
                sched.advance_ticks(world, target - sched.now());
                break;
            }
            Some(w) if w > sched.now() => {
                // Jump without ticking: advance_ticks stops exactly at
                // the wake tick, at which point the promise must hold.
                let dist = w.min(target) - sched.now();
                sched.advance_ticks(world, dist);
                if sched.now() == w {
                    check_jump(sched, world, &mut out);
                }
            }
            _ => sched.tick(world),
        }
    }
    out
}

/// Drives the scheduler until every component is quiescent, checking the
/// protocol at every decision point; flags `no-quiescence` if the machine
/// fails to drain within `budget` base ticks of the starting time.
pub fn run_to_quiescence<W>(
    sched: &mut Scheduler<W>,
    world: &mut W,
    budget: u64,
) -> Vec<Violation> {
    let deadline = sched.now() + budget;
    let mut out = Vec::new();
    loop {
        if sched.quiescent(world) {
            return out;
        }
        if sched.now() >= deadline {
            out.push(Violation {
                comp: "scheduler".to_string(),
                rule: "no-quiescence",
                now: sched.now(),
                detail: format!("machine failed to drain within {budget} ticks"),
            });
            return out;
        }
        out.extend(probe_violations(sched, world));
        match wake_fold(sched, world) {
            None => {
                // Eventless but not quiescent: probe_violations flagged
                // the culprits; ticking further cannot help.
                return out;
            }
            Some(w) if w > sched.now() => {
                sched.advance_ticks(world, w - sched.now());
                check_jump(sched, world, &mut out);
            }
            _ => sched.tick(world),
        }
    }
}

/// The generic handshake-compliance audit over a machine's
/// [`PortSnapshot`]s, taken at tick `now`:
///
/// - **port-no-loss** — every accepted offer is accounted for:
///   `pushed == popped + len`. A mismatch means a value was dropped or
///   conjured outside the [`TxPort`]/[`RxPort`] handshake.
/// - **port-capacity** — occupancy and high-water never exceed the
///   configured bound; exceeding it means a producer bypassed the
///   ready check.
/// - **port-drain** — with `drained` set (the machine claims global
///   quiescence), every port must be empty; a queued element nobody
///   will ever accept is a lost value.
///
/// The stable-data and no-pop-without-valid rules are structural in
/// [`Channel`] itself (a refused offer returns the value; `accept` on
/// empty returns `None`), so they need no posthoc audit here — the
/// property tests cover them directly.
pub fn check_ports(ports: &[PortSnapshot], now: Tick, drained: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    for p in ports {
        if p.pushed != p.popped + p.len as u64 {
            out.push(Violation {
                comp: p.name.clone(),
                rule: "port-no-loss",
                now,
                detail: format!(
                    "pushed {} != popped {} + occupancy {}",
                    p.pushed, p.popped, p.len
                ),
            });
        }
        if p.len > p.capacity || p.high_water > p.capacity {
            out.push(Violation {
                comp: p.name.clone(),
                rule: "port-capacity",
                now,
                detail: format!(
                    "occupancy {} / high-water {} exceed capacity {}",
                    p.len, p.high_water, p.capacity
                ),
            });
        }
        if drained && p.len > 0 {
            out.push(Violation {
                comp: p.name.clone(),
                rule: "port-drain",
                now,
                detail: format!("{} elements still queued after drain", p.len),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, Instruments};
    use crate::time::ClockDomain;

    /// Well-behaved clocked counter: fires on every edge `n` times.
    struct Counter {
        clock: ClockDomain,
        remaining: u64,
    }

    impl Component<()> for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn tick(&mut self, now: Tick, _w: &mut (), _i: &mut Instruments) {
            if self.remaining > 0 && self.clock.fires_at(now) {
                self.remaining -= 1;
            }
        }
        fn next_event(&self, now: Tick, _w: &()) -> Option<Tick> {
            (self.remaining > 0).then(|| self.clock.next_edge(now))
        }
        fn is_quiescent(&self, _now: Tick, _w: &()) -> bool {
            self.remaining == 0
        }
    }

    /// Liveness bug on purpose: claims work remains but never schedules
    /// an event for it.
    struct Stuck;

    impl Component<()> for Stuck {
        fn name(&self) -> &str {
            "stuck"
        }
        fn tick(&mut self, _: Tick, _: &mut (), _: &mut Instruments) {}
        fn next_event(&self, _: Tick, _: &()) -> Option<Tick> {
            None
        }
        fn is_quiescent(&self, _: Tick, _: &()) -> bool {
            false
        }
    }

    /// Clock bug on purpose: reports its wake one tick in the past once
    /// time has started moving — the classic off-by-one a calendar-queue
    /// scheduler would silently mask by rotating past the bucket.
    struct Tardy;

    impl Component<()> for Tardy {
        fn name(&self) -> &str {
            "tardy"
        }
        fn tick(&mut self, _: Tick, _: &mut (), _: &mut Instruments) {}
        fn next_event(&self, now: Tick, _: &()) -> Option<Tick> {
            Some(now.saturating_sub(1))
        }
        fn is_quiescent(&self, _: Tick, _: &()) -> bool {
            false
        }
    }

    /// Promise bug on purpose: schedules a wake it never acts on (the
    /// re-probe keeps pushing the promise one edge further out).
    struct Flake {
        clock: ClockDomain,
    }

    impl Component<()> for Flake {
        fn name(&self) -> &str {
            "flake"
        }
        fn tick(&mut self, _: Tick, _: &mut (), _: &mut Instruments) {}
        fn next_event(&self, now: Tick, _: &()) -> Option<Tick> {
            // next_edge of now+1: always strictly in the future, so a
            // jump to the promise finds it has moved.
            Some(self.clock.next_edge(now + 1))
        }
        fn is_quiescent(&self, _: Tick, _: &()) -> bool {
            false
        }
    }

    #[test]
    fn well_behaved_component_is_clean() {
        let mut sched: Scheduler<()> = Scheduler::new(100_000, true);
        sched.register(
            0,
            Box::new(Counter {
                clock: ClockDomain::from_ghz(2.0),
                remaining: 8,
            }),
            &mut (),
        );
        let v = run_to_quiescence(&mut sched, &mut (), 10_000);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
        assert!(sched.quiescent(&()));
    }

    #[test]
    fn eventless_active_component_is_flagged() {
        let mut sched: Scheduler<()> = Scheduler::new(100_000, true);
        sched.register(0, Box::new(Stuck), &mut ());
        let v = run_to_quiescence(&mut sched, &mut (), 10_000);
        assert!(v
            .iter()
            .any(|v| v.rule == "eventless-active" && v.comp == "stuck"));
    }

    #[test]
    fn wake_in_past_is_flagged() {
        let mut sched: Scheduler<()> = Scheduler::new(100_000, true);
        sched.register(0, Box::new(Tardy), &mut ());
        // A healthy neighbour keeps time moving so the tardy report is
        // genuinely in the past, not just at tick zero.
        sched.register(
            1,
            Box::new(Counter {
                clock: ClockDomain::from_ghz(2.0),
                remaining: 4,
            }),
            &mut (),
        );
        let v = run_for(&mut sched, &mut (), 16);
        assert!(
            v.iter()
                .any(|v| v.rule == "wake-in-past" && v.comp == "tardy"),
            "got {v:?}"
        );
    }

    #[test]
    fn broken_wake_promise_is_flagged() {
        let mut sched: Scheduler<()> = Scheduler::new(100_000, true);
        sched.register(
            0,
            Box::new(Flake {
                clock: ClockDomain::from_ghz(1.0),
            }),
            &mut (),
        );
        let v = run_for(&mut sched, &mut (), 64);
        assert!(v.iter().any(|v| v.rule == "stale-wake"), "got {v:?}");
    }

    #[test]
    fn port_audit_flags_loss_capacity_and_drain() {
        use crate::port::PortSnapshot;
        let healthy = PortSnapshot {
            name: "ok".into(),
            pushed: 10,
            popped: 10,
            len: 0,
            capacity: 4,
            high_water: 4,
            stalls: 2,
        };
        let lossy = PortSnapshot {
            name: "lossy".into(),
            pushed: 10,
            popped: 8,
            len: 1,
            capacity: 4,
            high_water: 3,
            stalls: 0,
        };
        let overfull = PortSnapshot {
            name: "overfull".into(),
            pushed: 6,
            popped: 0,
            len: 6,
            capacity: 4,
            high_water: 6,
            stalls: 0,
        };
        let v = check_ports(&[healthy.clone(), lossy, overfull], 7, false);
        assert_eq!(v.len(), 2, "got {v:?}");
        assert!(v
            .iter()
            .any(|v| v.rule == "port-no-loss" && v.comp == "lossy"));
        assert!(v
            .iter()
            .any(|v| v.rule == "port-capacity" && v.comp == "overfull" && v.now == 7));
        let stuck = PortSnapshot {
            name: "stuck".into(),
            pushed: 3,
            popped: 2,
            len: 1,
            capacity: 4,
            high_water: 2,
            stalls: 0,
        };
        let v = check_ports(&[healthy, stuck], 9, true);
        assert_eq!(v.len(), 1, "got {v:?}");
        assert_eq!(v[0].rule, "port-drain");
    }

    #[test]
    fn skip_and_no_skip_runs_agree() {
        let mk = |skip| {
            let mut s: Scheduler<()> = Scheduler::new(100_000, skip);
            s.register(
                0,
                Box::new(Counter {
                    clock: ClockDomain::from_ghz(1.5),
                    remaining: 5,
                }),
                &mut (),
            );
            s
        };
        let mut a = mk(false);
        let mut b = mk(true);
        assert!(run_for(&mut a, &mut (), 50).is_empty());
        assert!(run_for(&mut b, &mut (), 50).is_empty());
        assert_eq!(a.now(), b.now());
        assert!(a.quiescent(&()) && b.quiescent(&()));
    }
}
