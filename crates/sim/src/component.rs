//! The component/scheduler substrate: one uniform protocol for everything
//! that does work on the 6 GHz base tick.
//!
//! The machine is a set of independently-clocked structural units (host
//! core, cache hierarchy, mesh, accelerator engines, operand channels).
//! Before this module existed, the system crate's tick loop, its skip-ahead
//! wake probe, its drain predicate and its drain audit each enumerated
//! those units by hand with ad-hoc `tick`/`next_event`/`is_active`
//! signatures — so adding a component meant updating four places, and
//! forgetting one produced exactly the stranded-packet class of bug the
//! sanitizer exists to catch. Here the enumeration happens once:
//! components implement [`Component`] and are registered with a
//! [`Scheduler`], which owns the clock, the busy-path-O(1) wake probe,
//! idle skip-ahead, the tick budget, the drain loop and the drain audit.
//!
//! ## The world parameter
//!
//! `Component<W>` is generic over a *world* `W`: the shared mutable state
//! every component operates on (for the full machine, the memory system,
//! channel buffers, functional image and so on live in the world; each
//! registered component is a thin view that knows which part of the world
//! is "its" state). This sidesteps the aliasing problem of a scheduler
//! that owns components which also need `&mut` access to each other —
//! e.g. the host and every engine issue requests into the memory system
//! during their own tick. Self-contained components (the mesh, a
//! standalone memory system) implement `Component<W>` for every `W` and
//! can be scheduled with `W = ()`.
//!
//! ## Protocol contract
//!
//! - [`Component::tick`] does one base tick of work. Components gate
//!   internally on their own [`ClockDomain`](crate::time::ClockDomain)
//!   edges; the scheduler always calls every component on every simulated
//!   tick, in registration *stage* order.
//! - [`Component::next_event`] reports the earliest tick `>= now` at
//!   which the component could do observable work, or `None` when only
//!   external input (another component's action) can wake it. Reporting
//!   too early costs time; reporting too late breaks bit-identity between
//!   skipping and non-skipping runs. The scheduler (with the sanitizer
//!   on) flags wake times in the past.
//! - [`Component::is_quiescent`] holds when the component has no in-flight
//!   work at all — the machine may stop when every component is quiescent.
//! - [`Component::audit_drained`] asserts conservation invariants of the
//!   drained state against the [`Sanitizer`].

use crate::calendar::CalendarQueue;
use crate::profile::Profiler;
use crate::time::{earliest, Tick};
use distda_check::Sanitizer;
use distda_trace::Tracer;
use std::time::Instant;

/// The instrumentation bundle handed to every component: the tracer, the
/// invariant sanitizer and the scheduler self-profiler. All three are
/// cheap cloneable handles that are free when disabled, so components
/// hold copies rather than references.
#[derive(Debug, Clone, Default)]
pub struct Instruments {
    /// Event/metrics tracing (disabled by default).
    pub tracer: Tracer,
    /// Invariant sanitizer (disabled by default).
    pub san: Sanitizer,
    /// Scheduler self-profiler (disabled by default). Unlike the tracer
    /// and sanitizer, components never emit into it themselves — the
    /// scheduler times their `tick()` calls structurally.
    pub prof: Profiler,
}

impl Instruments {
    /// Disabled tracer, sanitizer and profiler: zero-cost instrumentation.
    pub fn disabled() -> Self {
        Self::default()
    }
}

/// One structural unit of the simulated machine. See the module docs for
/// the protocol contract; `W` is the shared world state.
pub trait Component<W> {
    /// Stable diagnostic name (`"mem"`, `"noc"`, `"engine.3"`, ...).
    fn name(&self) -> &str;

    /// (Re-)binds instrumentation. Called once at registration and again
    /// whenever the scheduler's [`Instruments`] are replaced; components
    /// that hold trace sinks or sanitizer handles refresh them here.
    fn attach(&mut self, _world: &mut W, _instr: &Instruments) {}

    /// Advances one base tick of work at `now`.
    fn tick(&mut self, now: Tick, world: &mut W, instr: &mut Instruments);

    /// Earliest tick `>= now` at which this component could do observable
    /// work, `None` if only external input can wake it.
    fn next_event(&self, now: Tick, world: &W) -> Option<Tick>;

    /// Whether the component holds no in-flight work at all.
    fn is_quiescent(&self, now: Tick, world: &W) -> bool;

    /// Whether this component's [`Component::tick`] is a no-op (a pure
    /// audit/bookkeeping component that only participates in the wake
    /// probe, the quiescence predicate and the drain audit). The
    /// scheduler skips calling `tick()` on passive components, removing
    /// their virtual dispatch from the hot loop; everything else about
    /// the protocol still applies. Must be constant for the component's
    /// lifetime.
    fn passive(&self) -> bool {
        false
    }

    /// Audits the drained state against conservation invariants. Only
    /// called once the whole machine is quiescent, and only with the
    /// sanitizer enabled.
    fn audit_drained(&self, _now: Tick, _world: &W, _san: &Sanitizer) {}

    /// Describes this component's stalled work for deadlock/budget error
    /// reports, `None` if nothing is visibly stuck.
    fn stall(&self, _now: Tick, _world: &W) -> Option<String> {
        None
    }
}

/// Why a [`Scheduler`] run loop stopped short of its exit condition.
/// Phase-agnostic; callers label it with their run-loop phase when
/// converting to their own error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// The tick budget ran out before the exit condition held.
    Budget {
        /// Tick at which the budget was exhausted.
        now: Tick,
        /// The configured budget.
        budget: u64,
        /// Fold of every component's [`Component::stall`] report.
        stalled: String,
    },
    /// Every component reported no internally scheduled event (the wake
    /// fold returned `None`), yet the exit condition still does not hold.
    Deadlock {
        /// Tick at which the deadlock was proven.
        now: Tick,
        /// Fold of every component's [`Component::stall`] report.
        stalled: String,
    },
    /// The sanitizer recorded one or more invariant violations.
    Invariant {
        /// Tick at which the run was stopped.
        now: Tick,
        /// Total violations recorded.
        count: usize,
        /// Rendered violation log.
        report: String,
    },
}

struct Slot<W> {
    /// Tick-phase ordering key; ties broken by registration order.
    stage: u32,
    comp: Box<dyn Component<W>>,
}

/// Owns the clock and orchestrates registered components: the lock-step
/// tick loop, the skip-ahead wake probe, the tick budget, run loops and
/// the drain loop with its invariant audit.
///
/// Components tick in ascending *stage* order (ties in registration
/// order), so a fixed intra-tick phase structure — deliver, issue,
/// compute, inject, route — is expressed by stage numbers rather than by
/// the order of statements in a hand-written loop. [`Instruments`] attach
/// in registration order, which keeps trace track IDs stable regardless
/// of stage assignments.
pub struct Scheduler<W> {
    now: Tick,
    tick_budget: u64,
    skip: bool,
    instr: Instruments,
    /// Registration order (stable track/audit order).
    comps: Vec<Slot<W>>,
    /// Indices into `comps`, sorted by (stage, registration order).
    tick_order: Vec<usize>,
    /// `tick_order` minus passive components: the indices whose `tick()`
    /// is actually called each simulated tick.
    active_order: Vec<usize>,
    /// Per-component profiler slot, parallel to `comps`.
    prof_slots: Vec<usize>,
    /// Reused `(slot, host_ns)` buffer for profiled ticks.
    prof_scratch: Vec<(usize, u64)>,
    /// Calendar of each component's last *complete-probe* wake tick:
    /// orders the next probe so the earliest-wake component is asked
    /// first and the `== now` early exit triggers immediately on the
    /// busy path. Purely an ordering heuristic — staleness can cost a
    /// longer fold, never a wrong result (the fold minimum is
    /// order-independent).
    wake_calendar: CalendarQueue,
    /// Components whose last complete probe reported `None` (probed
    /// after the calendar's entries).
    wake_none: Vec<u32>,
    /// Whether `wake_calendar`/`wake_none` cover every component (false
    /// after registration or instrument changes: fall back to the
    /// stage-order scan until the next complete probe).
    wake_known: bool,
    /// The component the most recent fold settled on (argmin). While the
    /// machine is busy the same component usually reports `now` again on
    /// the next probe, and contractually every candidate is `>= now`, so
    /// one confirming call proves the whole fold — the busy-path probe is
    /// a single `next_event` when the hint hits. Purely a heuristic: a
    /// miss falls through to the ordered scan.
    wake_hint: Option<u32>,
    /// The fold result of the most recent probe.
    wake_cache: Option<Tick>,
    /// Whether `wake_cache` is still provably current: no tick has
    /// executed and no external world mutation is possible since the
    /// probe that filled it (run-loop entries conservatively clear it).
    /// See `next_wake` for the identity argument.
    cache_valid: bool,
    /// Whether the most recent *fresh* probe found nothing due at `now`
    /// (the machine is coasting between scheduled wakes). While set,
    /// probes use the plain stage-order scan and skip calendar
    /// maintenance entirely: on the idle path every probe is complete,
    /// so rebuilding the calendar each time costs more than the ordering
    /// heuristic can ever repay. Any fresh `== now` result (hint hit or
    /// fold early-exit) clears it, restoring calendar-ordered visits for
    /// busy phases. Cached probe hits never touch it — a scheduled wake
    /// executing is not a busy phase.
    idle_streak: bool,
    /// Reused `(component, candidate)` scratch for calendar rebuilds.
    cand_scratch: Vec<(u32, Option<Tick>)>,
}

impl<W> std::fmt::Debug for Scheduler<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("tick_budget", &self.tick_budget)
            .field("skip", &self.skip)
            .field(
                "components",
                &self
                    .tick_order
                    .iter()
                    .map(|&i| self.comps[i].comp.name())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<W> Scheduler<W> {
    /// A scheduler at tick 0 with the given budget, skip-ahead setting and
    /// disabled instrumentation.
    pub fn new(tick_budget: u64, skip: bool) -> Self {
        Self {
            now: 0,
            tick_budget,
            skip,
            instr: Instruments::disabled(),
            comps: Vec::new(),
            tick_order: Vec::new(),
            active_order: Vec::new(),
            prof_slots: Vec::new(),
            prof_scratch: Vec::new(),
            // 64-tick buckets x 64 buckets: one rotation covers ~683 ns
            // of simulated time, past which wakes overflow-park.
            wake_calendar: CalendarQueue::new(6, 64),
            wake_none: Vec::new(),
            wake_known: false,
            wake_hint: None,
            wake_cache: None,
            cache_valid: false,
            idle_streak: false,
            cand_scratch: Vec::new(),
        }
    }

    /// Current base tick.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// The configured tick budget.
    pub fn tick_budget(&self) -> u64 {
        self.tick_budget
    }

    /// Enables or disables idle skip-ahead. Simulated results are
    /// bit-identical either way.
    pub fn set_skip(&mut self, on: bool) {
        self.skip = on;
    }

    /// The current instrumentation bundle.
    pub fn instruments(&self) -> &Instruments {
        &self.instr
    }

    /// Replaces the instrumentation bundle and re-attaches every
    /// component, in registration order.
    pub fn set_instruments(&mut self, world: &mut W, instr: Instruments) {
        self.instr = instr;
        self.prof_slots.clear();
        for slot in &mut self.comps {
            slot.comp.attach(world, &self.instr);
            self.prof_slots
                .push(self.instr.prof.register(slot.comp.name()));
        }
        // `attach` takes `&mut W`: treat the swap as a world mutation.
        self.invalidate_wakes();
    }

    /// Registers a component at tick-phase `stage` and attaches the
    /// current instruments to it. Registration is the *only* step needed
    /// to include a component in the tick loop, the wake probe, the drain
    /// predicate and the drain audit.
    pub fn register(&mut self, stage: u32, mut comp: Box<dyn Component<W>>, world: &mut W) {
        comp.attach(world, &self.instr);
        let idx = self.comps.len();
        self.prof_slots.push(self.instr.prof.register(comp.name()));
        self.comps.push(Slot { stage, comp });
        let pos = self
            .tick_order
            .partition_point(|&i| self.comps[i].stage <= stage);
        self.tick_order.insert(pos, idx);
        self.active_order = self
            .tick_order
            .iter()
            .copied()
            .filter(|&i| !self.comps[i].comp.passive())
            .collect();
        // Structural change: the calendar no longer covers every
        // component, so the next probe falls back to the stage-order scan.
        self.invalidate_wakes();
    }

    /// Drops every cached wake: the next probe scans all components in
    /// stage order and rebuilds the calendar.
    fn invalidate_wakes(&mut self) {
        self.wake_calendar.clear();
        self.wake_none.clear();
        self.wake_known = false;
        self.wake_hint = None;
        self.cache_valid = false;
        self.idle_streak = false;
    }

    /// Registered components in tick (stage) order.
    pub fn components(&self) -> impl Iterator<Item = &dyn Component<W>> {
        self.tick_order.iter().map(|&i| &*self.comps[i].comp)
    }

    /// One base tick: every non-passive component, in stage order, then
    /// advance the clock. With the self-profiler on, each component's
    /// `tick()` is timed against the host monotonic clock (one registry
    /// lock per simulated tick); profiling never changes what components
    /// do.
    pub fn tick(&mut self, world: &mut W) {
        let now = self.now;
        if self.instr.prof.on() {
            self.prof_scratch.clear();
            for k in 0..self.active_order.len() {
                let i = self.active_order[k];
                let t0 = Instant::now();
                self.comps[i].comp.tick(now, world, &mut self.instr);
                self.prof_scratch
                    .push((self.prof_slots[i], t0.elapsed().as_nanos() as u64));
            }
            self.instr.prof.record_tick(&self.prof_scratch, now);
        } else {
            for k in 0..self.active_order.len() {
                let i = self.active_order[k];
                self.comps[i].comp.tick(now, world, &mut self.instr);
            }
        }
        self.now += 1;
        // An executed tick mutates the world: every cached wake is stale.
        self.cache_valid = false;
    }

    /// Earliest base tick `>= now` at which any component would do
    /// observable work, `None` if no component will ever act again
    /// without new input.
    ///
    /// Every candidate is contractually `>= now` (the sanitizer flags
    /// violations), so a component reporting `now` is already the global
    /// minimum and the fold stops early — the probe is O(1) while the
    /// machine is busy, where skipping cannot pay for itself.
    ///
    /// With neither the sanitizer nor the profiler attached, the probe
    /// runs through a [`CalendarQueue`] of each component's last reported
    /// wake: components are asked in ascending cached-wake order (so the
    /// early exit triggers on the first call while the machine is busy),
    /// and consecutive probes with no executed tick in between reuse the
    /// previous fold outright. Both are behaviour-identical by the
    /// protocol contract: `next_event(now, world)` is the minimum `>=
    /// now` of a fixed event set determined by the (unchanged) world and
    /// component state, so the fold minimum is independent of probe
    /// order, and for any `now' ∈ (now, w]` with the world untouched the
    /// fold still yields `w`. With the sanitizer or profiler attached the
    /// full stage-order scan runs instead, preserving exact wake-in-past
    /// check coverage and probe accounting.
    pub fn next_wake(&mut self, world: &W) -> Option<Tick> {
        if self.instr.san.on() || self.instr.prof.on() {
            return self.next_wake_scan(world);
        }
        self.next_wake_fast(world)
    }

    /// The calendar-ordered, cache-reusing probe (instrumentation off).
    fn next_wake_fast(&mut self, world: &W) -> Option<Tick> {
        if self.cache_valid {
            return self.wake_cache;
        }
        let now = self.now;
        // Busy-path shortcut: if the component the last fold settled on
        // reports `now` again, it is already the global minimum (every
        // candidate is contractually `>= now`) — no other component needs
        // to be asked.
        if let Some(id) = self.wake_hint {
            if self.comps[id as usize].comp.next_event(now, world) == Some(now) {
                self.wake_cache = Some(now);
                self.cache_valid = true;
                self.idle_streak = false;
                return Some(now);
            }
        }
        let mut cands = std::mem::take(&mut self.cand_scratch);
        cands.clear();
        let mut w: Option<Tick> = None;
        let mut argmin: Option<u32> = None;
        let mut complete = true;
        // While coasting through an idle streak every probe is complete
        // anyway, so calendar-ordered visits buy nothing: scan in stage
        // order and skip the rebuild below.
        let coasting = self.idle_streak;
        {
            let comps = &self.comps;
            // Probes one component; after the `now` early-exit fires the
            // remaining visits degrade to a flag check.
            let mut probe = |id: u32| {
                if !complete {
                    return;
                }
                let cand = comps[id as usize].comp.next_event(now, world);
                cands.push((id, cand));
                if let Some(c) = cand {
                    if w.is_none_or(|cur| c < cur) {
                        argmin = Some(id);
                    }
                }
                w = earliest(w, cand);
                if w == Some(now) {
                    complete = false;
                }
            };
            if self.wake_known && !coasting {
                self.wake_calendar.visit_ascending(|_, id| probe(id));
                for &id in &self.wake_none {
                    probe(id);
                }
            } else {
                // Structural fallback and idle streak: plain stage-order
                // scan.
                for &i in &self.tick_order {
                    probe(i as u32);
                }
            }
        }
        self.wake_hint = argmin;
        if complete {
            // Nothing is due at `now`: the machine is idle at a known
            // horizon. Subsequent probes coast on the stage-order scan.
            self.idle_streak = true;
            if !coasting {
                // First complete probe after a busy phase (or a structural
                // change): rebuild the calendar from this probe so that
                // once the machine goes busy again, probes ask in
                // ascending-wake order. Consecutive complete probes skip
                // this — on a long idle stretch the rebuild is pure
                // overhead. An early-exited probe likewise leaves the
                // previous order in place (the stale order is only a
                // heuristic).
                self.wake_calendar.clear_to(now);
                self.wake_none.clear();
                for &(id, cand) in &cands {
                    match cand {
                        Some(t) => self.wake_calendar.insert(t, id),
                        None => self.wake_none.push(id),
                    }
                }
                self.wake_known = true;
            }
        } else {
            // A fresh probe found work due at `now`: busy phase.
            self.idle_streak = false;
        }
        self.cand_scratch = cands;
        self.wake_cache = w;
        self.cache_valid = true;
        w
    }

    /// The instrumented stage-order probe: sanitizer wake-in-past checks
    /// on every candidate, profiler probe/argmin accounting.
    fn next_wake_scan(&self, world: &W) -> Option<Tick> {
        let profiling = self.instr.prof.on();
        let t0 = profiling.then(Instant::now);
        let now = self.now;
        let mut w = None;
        // With the profiler on: the component whose event the fold settles
        // on (the wake target, first wins on ties).
        let mut argmin: Option<usize> = None;
        for k in &self.tick_order {
            let slot = &self.comps[*k];
            let cand = slot.comp.next_event(now, world);
            if self.instr.san.on() {
                if let Some(c) = cand {
                    self.instr
                        .san
                        .check(c >= now, slot.comp.name(), "wake-in-past", now, || {
                            format!("next_event reported {c} < now {now}")
                        });
                }
            }
            if profiling {
                if let Some(c) = cand {
                    if w.is_none_or(|cur| c < cur) {
                        argmin = Some(*k);
                    }
                }
            }
            w = earliest(w, cand);
            if w == Some(now) {
                break;
            }
        }
        if let Some(t0) = t0 {
            self.instr.prof.record_probe(
                t0.elapsed().as_nanos() as u64,
                argmin.map(|i| self.prof_slots[i]),
            );
        }
        w
    }

    /// Whether every registered component is quiescent.
    pub fn quiescent(&self, world: &W) -> bool {
        let now = self.now;
        self.tick_order
            .iter()
            .all(|&i| self.comps[i].comp.is_quiescent(now, world))
    }

    /// Fold of every component's [`Component::stall`] report, for error
    /// messages.
    pub fn stall_report(&self, world: &W) -> String {
        let now = self.now;
        let parts: Vec<String> = self
            .tick_order
            .iter()
            .filter_map(|&i| self.comps[i].comp.stall(now, world))
            .collect();
        if parts.is_empty() {
            "nothing visibly stalled".to_string()
        } else {
            parts.join("; ")
        }
    }

    fn check_invariants(&self) -> Result<(), Stop> {
        let count = self.instr.san.count();
        if count > 0 {
            return Err(Stop::Invariant {
                now: self.now,
                count,
                report: self.instr.san.render(),
            });
        }
        Ok(())
    }

    fn budget_stop<T>(&self, world: &W) -> Result<T, Stop> {
        Err(Stop::Budget {
            now: self.now,
            budget: self.tick_budget,
            stalled: self.stall_report(world),
        })
    }

    /// Runs until `done(now, world)` holds, checked before every tick.
    ///
    /// With skip-ahead on, provably idle stretches are jumped over: when
    /// the wake fold says nothing observable can happen before tick `w`,
    /// the clock moves straight to `w` (re-evaluating `done` and the
    /// budget there, exactly as tick-by-tick execution would have).
    /// A wake fold of `None` while `done` does not hold is a proven
    /// deadlock.
    ///
    /// # Errors
    ///
    /// [`Stop::Budget`], [`Stop::Deadlock`], or [`Stop::Invariant`] as
    /// soon as the sanitizer has recorded anything.
    pub fn run_until(
        &mut self,
        world: &mut W,
        mut done: impl FnMut(Tick, &W) -> bool,
    ) -> Result<(), Stop> {
        // The caller may have mutated the world since the last run loop
        // (MMIO writes, queued launches): any cached wake is suspect.
        self.cache_valid = false;
        loop {
            self.check_invariants()?;
            if done(self.now, world) {
                return Ok(());
            }
            if self.now >= self.tick_budget {
                return self.budget_stop(world);
            }
            if self.skip {
                match self.next_wake(world) {
                    None => {
                        return Err(Stop::Deadlock {
                            now: self.now,
                            stalled: self.stall_report(world),
                        })
                    }
                    Some(w) if w > self.now => {
                        // Jump, then tick at the wake tick without
                        // re-probing (the probe would just report `w`
                        // again). The done/budget checks must still run
                        // at the new time first: tick-by-tick execution
                        // would have evaluated them before reaching the
                        // tick at `w`.
                        if self.instr.prof.on() {
                            self.instr.prof.record_skip(w - self.now);
                        }
                        self.now = w;
                        if done(self.now, world) {
                            return Ok(());
                        }
                        if self.now >= self.tick_budget {
                            return self.budget_stop(world);
                        }
                        if self.instr.san.on() {
                            // Conformance: the run is not done, so having
                            // jumped to the promised wake tick, some
                            // component must see observable work at
                            // exactly this tick. (Checked only past the
                            // `done` test: a jump to a completion time —
                            // e.g. the host's segment finish — may leave
                            // every component legitimately eventless.)
                            let re = self.next_wake(world);
                            self.instr.san.check(
                                re == Some(self.now),
                                "scheduler",
                                "stale-wake",
                                self.now,
                                || format!("jumped to promised wake tick but re-probe says {re:?}"),
                            );
                        }
                    }
                    _ => {}
                }
            }
            self.tick(world);
        }
    }

    /// Advances exactly `n` base ticks of simulated time (skipping over
    /// idle stretches when enabled). Unlike [`Scheduler::run_until`] this
    /// does not poll the sanitizer or the budget: it is the primitive for
    /// charging fixed-latency work (e.g. MMIO transfers).
    pub fn advance_ticks(&mut self, world: &mut W, n: u64) {
        self.cache_valid = false;
        let target = self.now + n;
        while self.now < target {
            if self.skip {
                match self.next_wake(world) {
                    None => {
                        if self.instr.prof.on() {
                            self.instr.prof.record_skip(target - self.now);
                        }
                        self.now = target;
                        return;
                    }
                    Some(w) if w > self.now => {
                        let to = w.min(target);
                        if self.instr.prof.on() {
                            self.instr.prof.record_skip(to - self.now);
                        }
                        self.now = to;
                        continue;
                    }
                    _ => {}
                }
            }
            self.tick(world);
        }
    }

    /// Runs until every component is quiescent, then audits the drained
    /// state (fold of every component's [`Component::audit_drained`],
    /// skipped entirely with the sanitizer off).
    ///
    /// # Errors
    ///
    /// As [`Scheduler::run_until`]; additionally [`Stop::Invariant`] if
    /// the drain audit flags violations.
    pub fn drain(&mut self, world: &mut W) -> Result<(), Stop> {
        self.cache_valid = false;
        loop {
            self.check_invariants()?;
            if self.quiescent(world) {
                break;
            }
            if self.now >= self.tick_budget {
                return self.budget_stop(world);
            }
            if self.skip {
                match self.next_wake(world) {
                    None => {
                        return Err(Stop::Deadlock {
                            now: self.now,
                            stalled: self.stall_report(world),
                        })
                    }
                    Some(w) if w > self.now => {
                        if self.instr.prof.on() {
                            self.instr.prof.record_skip(w - self.now);
                        }
                        self.now = w;
                        if self.quiescent(world) {
                            break;
                        }
                        if self.now >= self.tick_budget {
                            return self.budget_stop(world);
                        }
                    }
                    _ => {}
                }
            }
            self.tick(world);
        }
        if self.instr.san.on() {
            let now = self.now;
            for k in &self.tick_order {
                self.comps[*k]
                    .comp
                    .audit_drained(now, world, &self.instr.san);
            }
        }
        self.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::ClockDomain;

    /// Toy world: a shared work queue and a completion counter.
    #[derive(Default)]
    struct World {
        queue: Vec<Tick>,
        finished: u64,
    }

    /// Produces one work item every clock edge until exhausted.
    struct Producer {
        clock: ClockDomain,
        remaining: u64,
    }

    impl Component<World> for Producer {
        fn name(&self) -> &str {
            "producer"
        }
        fn tick(&mut self, now: Tick, world: &mut World, _instr: &mut Instruments) {
            if self.remaining > 0 && self.clock.fires_at(now) {
                self.remaining -= 1;
                world.queue.push(now);
            }
        }
        fn next_event(&self, now: Tick, _world: &World) -> Option<Tick> {
            (self.remaining > 0).then(|| self.clock.next_edge(now))
        }
        fn is_quiescent(&self, _now: Tick, _world: &World) -> bool {
            self.remaining == 0
        }
        fn stall(&self, _now: Tick, _world: &World) -> Option<String> {
            (self.remaining > 0).then(|| format!("producer holds {}", self.remaining))
        }
    }

    /// Consumes queued items; wakes only when the queue is non-empty.
    struct Consumer;

    impl Component<World> for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }
        fn tick(&mut self, _now: Tick, world: &mut World, _instr: &mut Instruments) {
            if world.queue.pop().is_some() {
                world.finished += 1;
            }
        }
        fn next_event(&self, now: Tick, world: &World) -> Option<Tick> {
            (!world.queue.is_empty()).then_some(now)
        }
        fn is_quiescent(&self, _now: Tick, world: &World) -> bool {
            world.queue.is_empty()
        }
        fn audit_drained(&self, now: Tick, world: &World, san: &Sanitizer) {
            san.check(
                world.queue.is_empty(),
                "consumer",
                "queue-drain",
                now,
                || format!("{} items left", world.queue.len()),
            );
        }
    }

    fn make(budget: u64, skip: bool, items: u64) -> (Scheduler<World>, World) {
        let mut sched = Scheduler::new(budget, skip);
        let mut world = World::default();
        sched.register(
            0,
            Box::new(Producer {
                clock: ClockDomain::from_ghz(1.0),
                remaining: items,
            }),
            &mut world,
        );
        sched.register(10, Box::new(Consumer), &mut world);
        (sched, world)
    }

    #[test]
    fn run_until_reaches_condition() {
        let (mut sched, mut world) = make(10_000, false, 5);
        sched.run_until(&mut world, |_, w| w.finished == 5).unwrap();
        assert_eq!(world.finished, 5);
    }

    #[test]
    fn skip_and_no_skip_agree_on_time_and_results() {
        let (mut a, mut wa) = make(10_000, false, 7);
        let (mut b, mut wb) = make(10_000, true, 7);
        a.run_until(&mut wa, |_, w| w.finished == 7).unwrap();
        b.run_until(&mut wb, |_, w| w.finished == 7).unwrap();
        assert_eq!(a.now(), b.now());
        assert_eq!(wa.finished, wb.finished);
    }

    #[test]
    fn unsatisfiable_condition_is_a_deadlock_with_skip() {
        let (mut sched, mut world) = make(10_000, true, 2);
        let err = sched
            .run_until(&mut world, |_, w| w.finished == 99)
            .unwrap_err();
        assert!(matches!(err, Stop::Deadlock { .. }));
    }

    #[test]
    fn budget_exhaustion_reports_stalls() {
        let (mut sched, mut world) = make(3, false, 1_000);
        let err = sched
            .run_until(&mut world, |_, w| w.finished == 1_000)
            .unwrap_err();
        match err {
            Stop::Budget {
                budget, stalled, ..
            } => {
                assert_eq!(budget, 3);
                assert!(stalled.contains("producer holds"));
            }
            other => panic!("expected budget stop, got {other:?}"),
        }
    }

    #[test]
    fn drain_runs_to_quiescence_and_audits() {
        let (mut sched, mut world) = make(10_000, true, 4);
        let mut instr = Instruments::disabled();
        instr.san = Sanitizer::enabled();
        sched.set_instruments(&mut world, instr);
        sched.drain(&mut world).unwrap();
        assert!(sched.quiescent(&world));
        assert_eq!(world.finished, 4);
        assert_eq!(sched.instruments().san.count(), 0);
    }

    #[test]
    fn sanitizer_violation_stops_the_loop() {
        let (mut sched, mut world) = make(10_000, false, 5);
        let mut instr = Instruments::disabled();
        instr.san = Sanitizer::enabled();
        sched.set_instruments(&mut world, instr);
        sched
            .instruments()
            .san
            .flag("test", "forced", 0, "boom".into());
        let err = sched
            .run_until(&mut world, |_, w| w.finished == 5)
            .unwrap_err();
        assert!(matches!(err, Stop::Invariant { count: 1, .. }));
    }

    #[test]
    fn advance_ticks_moves_exactly_n() {
        let (mut sched, mut world) = make(10_000, true, 2);
        sched.advance_ticks(&mut world, 17);
        assert_eq!(sched.now(), 17);
        // Past quiescence, skip jumps straight to the target.
        sched.advance_ticks(&mut world, 1_000_000);
        assert_eq!(sched.now(), 17 + 1_000_000);
    }

    #[test]
    fn stage_order_controls_tick_phases_not_registration() {
        struct Stamp(&'static str);
        impl Component<Vec<&'static str>> for Stamp {
            fn name(&self) -> &str {
                self.0
            }
            fn tick(&mut self, _: Tick, w: &mut Vec<&'static str>, _: &mut Instruments) {
                w.push(self.0);
            }
            fn next_event(&self, _: Tick, _: &Vec<&'static str>) -> Option<Tick> {
                None
            }
            fn is_quiescent(&self, _: Tick, _: &Vec<&'static str>) -> bool {
                true
            }
        }
        let mut sched: Scheduler<Vec<&'static str>> = Scheduler::new(100, false);
        let mut world = Vec::new();
        sched.register(20, Box::new(Stamp("late")), &mut world);
        sched.register(10, Box::new(Stamp("early")), &mut world);
        sched.register(10, Box::new(Stamp("early2")), &mut world);
        sched.tick(&mut world);
        assert_eq!(world, vec!["early", "early2", "late"]);
        // Registration order is preserved for attach/audit purposes.
        let names: Vec<_> = sched.components().map(|c| c.name().to_string()).collect();
        assert_eq!(names, vec!["early", "early2", "late"]);
    }

    #[test]
    fn profiler_accounts_every_tick_and_skip() {
        let (mut sched, mut world) = make(1_000_000, true, 9);
        let mut instr = Instruments::disabled();
        instr.prof = crate::profile::Profiler::enabled();
        sched.set_instruments(&mut world, instr);
        sched.run_until(&mut world, |_, w| w.finished == 9).unwrap();
        let snap = sched.instruments().prof.snapshot().unwrap();
        assert_eq!(snap.comps.len(), 2);
        // Every simulated tick was either executed or skipped.
        assert_eq!(snap.ticks_executed + snap.ticks_skipped, sched.now());
        // Per-component active ticks are bounded by executed ticks, and
        // their sum by executed ticks x components.
        for c in &snap.comps {
            assert!(c.active_ticks <= snap.ticks_executed, "{c:?}");
        }
        let sum: u64 = snap.comps.iter().map(|c| c.active_ticks).sum();
        assert!(sum <= snap.ticks_executed * snap.comps.len() as u64);
        // The producer's clock edges are what wake the machine.
        assert!(snap.comps.iter().any(|c| c.wakes > 0));
        assert!(snap.probes > 0);
    }

    #[test]
    fn profiler_does_not_perturb_results() {
        let (mut plain, mut wp) = make(1_000_000, true, 9);
        let (mut prof, mut wq) = make(1_000_000, true, 9);
        let mut instr = Instruments::disabled();
        instr.prof = crate::profile::Profiler::enabled();
        prof.set_instruments(&mut wq, instr);
        plain.run_until(&mut wp, |_, w| w.finished == 9).unwrap();
        prof.run_until(&mut wq, |_, w| w.finished == 9).unwrap();
        assert_eq!(plain.now(), prof.now());
        assert_eq!(wp.finished, wq.finished);
    }

    #[test]
    fn passive_components_are_probed_and_audited_but_never_ticked() {
        use std::cell::Cell;
        use std::rc::Rc;

        /// Pure bookkeeping component: ticking it would be a bug.
        struct Auditor {
            ticked: Rc<Cell<bool>>,
            audited: Rc<Cell<bool>>,
        }
        impl Component<World> for Auditor {
            fn name(&self) -> &str {
                "auditor"
            }
            fn passive(&self) -> bool {
                true
            }
            fn tick(&mut self, _: Tick, _: &mut World, _: &mut Instruments) {
                self.ticked.set(true);
            }
            fn next_event(&self, _: Tick, _: &World) -> Option<Tick> {
                None
            }
            fn is_quiescent(&self, _: Tick, _: &World) -> bool {
                true
            }
            fn audit_drained(&self, _: Tick, _: &World, _: &Sanitizer) {
                self.audited.set(true);
            }
        }

        let ticked = Rc::new(Cell::new(false));
        let audited = Rc::new(Cell::new(false));
        let (mut sched, mut world) = make(10_000, true, 4);
        sched.register(
            5,
            Box::new(Auditor {
                ticked: ticked.clone(),
                audited: audited.clone(),
            }),
            &mut world,
        );
        let mut instr = Instruments::disabled();
        instr.san = Sanitizer::enabled();
        sched.set_instruments(&mut world, instr);
        sched.drain(&mut world).unwrap();
        assert_eq!(world.finished, 4);
        assert!(!ticked.get(), "passive component's tick() was called");
        assert!(audited.get(), "passive component was left out of the audit");
        // It still shows up in the component enumeration.
        assert!(sched.components().any(|c| c.name() == "auditor"));
    }

    #[test]
    fn fast_probe_matches_stage_order_fold() {
        // Step a machine tick by tick and check, at every step, that the
        // calendar-ordered/cached probe returns exactly the stage-order
        // fold minimum the old scan would have.
        let (mut sched, mut world) = make(10_000, true, 6);
        for _ in 0..40 {
            let now = sched.now();
            let expect = sched
                .components()
                .fold(None, |acc, c| earliest(acc, c.next_event(now, &world)));
            assert_eq!(sched.next_wake(&world), expect, "at tick {now}");
            // A second probe with nothing executed in between must hit the
            // cache and agree.
            assert_eq!(sched.next_wake(&world), expect, "cached, at tick {now}");
            sched.tick(&mut world);
        }
    }

    #[test]
    fn stale_wake_is_still_caught_with_sanitizer_on() {
        // A component that promises a wake and then moves it: the
        // sanitized run loop (which takes the stage-order scan path, not
        // the calendar) must still flag the broken promise after a jump.
        struct Flake;
        impl Component<()> for Flake {
            fn name(&self) -> &str {
                "flake"
            }
            fn tick(&mut self, _: Tick, _: &mut (), _: &mut Instruments) {}
            fn next_event(&self, now: Tick, _: &()) -> Option<Tick> {
                Some(now + 3)
            }
            fn is_quiescent(&self, _: Tick, _: &()) -> bool {
                false
            }
        }
        let mut sched: Scheduler<()> = Scheduler::new(1_000, true);
        let mut world = ();
        sched.register(0, Box::new(Flake), &mut world);
        let mut instr = Instruments::disabled();
        instr.san = Sanitizer::enabled();
        sched.set_instruments(&mut world, instr);
        let r = sched.run_until(&mut world, |_, _| false);
        assert!(matches!(r, Err(Stop::Invariant { .. })), "got {r:?}");
        assert!(sched.instruments().san.render().contains("stale-wake"));
    }

    #[test]
    fn wake_in_past_is_flagged_by_sanitizer() {
        struct Liar;
        impl Component<()> for Liar {
            fn name(&self) -> &str {
                "liar"
            }
            fn tick(&mut self, _: Tick, _: &mut (), _: &mut Instruments) {}
            fn next_event(&self, _now: Tick, _: &()) -> Option<Tick> {
                Some(0)
            }
            fn is_quiescent(&self, _: Tick, _: &()) -> bool {
                false
            }
        }
        let mut sched: Scheduler<()> = Scheduler::new(100, true);
        let mut world = ();
        sched.register(0, Box::new(Liar), &mut world);
        let mut instr = Instruments::disabled();
        instr.san = Sanitizer::enabled();
        sched.set_instruments(&mut world, instr);
        sched.now = 5;
        assert_eq!(sched.next_wake(&world), Some(0));
        assert!(sched.instruments().san.count() > 0);
        assert!(sched.instruments().san.render().contains("wake-in-past"));
    }
}
