//! Packets and traffic classes.

/// Index of a mesh node. Nodes are numbered row-major: `id = y * cols + x`.
pub type NodeId = usize;

/// Traffic classification used by the paper's Figure 10 breakdown.
///
/// * `HostCtrl` — host-initiated request/response control (offload
///   configuration MMIOs, cache request headers).
/// * `HostData` — data moved on behalf of the host (cache line fills,
///   writebacks between host-side caches and L3/DRAM).
/// * `AccCtrl`  — inter-accelerator control (produce/consume handshakes,
///   step/fill/drain commands, credits).
/// * `AccData`  — inter-accelerator operand data.
/// * `MemData`  — L3 miss traffic to/from the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    HostCtrl,
    HostData,
    AccCtrl,
    AccData,
    MemData,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::HostCtrl,
        TrafficClass::HostData,
        TrafficClass::AccCtrl,
        TrafficClass::AccData,
        TrafficClass::MemData,
    ];

    /// Stable short name used by reports.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::HostCtrl => "ctrl",
            TrafficClass::HostData => "data",
            TrafficClass::AccCtrl => "acc_ctrl",
            TrafficClass::AccData => "acc_data",
            TrafficClass::MemData => "mem_data",
        }
    }

    /// Index into per-class stat arrays.
    pub fn index(self) -> usize {
        match self {
            TrafficClass::HostCtrl => 0,
            TrafficClass::HostData => 1,
            TrafficClass::AccCtrl => 2,
            TrafficClass::AccData => 3,
            TrafficClass::MemData => 4,
        }
    }
}

/// A network packet carrying an opaque payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet<P> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload size in bytes (header overhead is added by the mesh model).
    pub bytes: u32,
    /// Traffic class for accounting.
    pub class: TrafficClass,
    /// Originating tenant for per-tenant traffic attribution (0 for
    /// single-tenant machines and unattributed traffic).
    pub tenant: u16,
    /// Opaque payload delivered to the destination.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Creates a packet attributed to tenant 0.
    pub fn new(src: NodeId, dst: NodeId, bytes: u32, class: TrafficClass, payload: P) -> Self {
        Self {
            src,
            dst,
            bytes,
            class,
            tenant: 0,
            payload,
        }
    }

    /// The same packet attributed to `tenant`.
    pub fn with_tenant(mut self, tenant: u16) -> Self {
        self.tenant = tenant;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for c in TrafficClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_are_paper_labels() {
        assert_eq!(TrafficClass::HostCtrl.name(), "ctrl");
        assert_eq!(TrafficClass::AccData.name(), "acc_data");
    }
}
