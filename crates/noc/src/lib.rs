//! # distda-noc
//!
//! A packet-granularity mesh network-on-chip model with XY routing,
//! bounded link queues (credit-based back-pressure, Section IV-C of the
//! paper) and per-class traffic accounting.
//!
//! The evaluated machine (Table III) places its 8 L3 clusters on a 4x2
//! mesh; the host tile and the memory controller attach to mesh nodes. The
//! NoC traffic breakdown of Figure 10 — host-initiated control/data vs.
//! inter-accelerator control/data — is exactly what [`NocStats`] records.
//!
//! ```
//! use distda_noc::{Mesh, NocConfig, Packet, TrafficClass};
//! use distda_sim::time::ClockDomain;
//!
//! let mut mesh: Mesh<u32> = Mesh::new(4, 2, NocConfig::default(), ClockDomain::from_ghz(2.0));
//! let pkt = Packet::new(0, 7, 64, TrafficClass::HostData, 99);
//! mesh.try_inject(0, pkt).unwrap();
//! let mut tick = 0;
//! while mesh.is_active() {
//!     mesh.tick(tick);
//!     tick += 1;
//! }
//! let delivered = mesh.drain_inbox(7);
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload, 99);
//! ```

pub mod mesh;
pub mod packet;

pub use mesh::{Mesh, NocConfig, NocStats};
pub use packet::{NodeId, Packet, TrafficClass};
