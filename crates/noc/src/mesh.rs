//! The mesh interconnect model.
//!
//! Packets are routed XY (x first, then y) through bounded per-link queues.
//! A packet occupies a link for its serialization time (`ceil(bytes /
//! flit_bytes)` cycles) plus the per-hop router latency; a full downstream
//! queue stalls it in place, which is how credit-based back-pressure
//! propagates. The model is packet-granularity rather than flit-granularity:
//! it preserves the bandwidth, latency and contention behaviour the paper's
//! results depend on without simulating VC allocation.

use crate::packet::{NodeId, Packet, TrafficClass};
use distda_check::Sanitizer;
use distda_sim::port::{Channel, PortSnapshot};
use distda_sim::time::{ClockDomain, Tick};
use distda_sim::Fifo;
use distda_trace::{EventKind, TraceSink};

/// Per-packet header bytes added on the wire (route + sequencing + CRC).
pub const HEADER_BYTES: u32 = 8;

/// Mesh configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Bytes carried per flit (link width).
    pub flit_bytes: u32,
    /// Router pipeline latency per hop, in NoC cycles.
    pub hop_latency: u64,
    /// Capacity of each link queue, in packets.
    pub link_queue: usize,
    /// Capacity of each node's injection queue, in packets.
    pub inject_queue: usize,
}

impl Default for NocConfig {
    /// 16-byte links, 2-cycle routers, 4-deep queues — a conventional
    /// low-radix mesh router in the paper's technology node.
    fn default() -> Self {
        Self {
            flit_bytes: 16,
            hop_latency: 2,
            link_queue: 4,
            inject_queue: 8,
        }
    }
}

/// Aggregate traffic statistics, indexed by [`TrafficClass`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NocStats {
    /// Packets injected per class.
    pub packets: [u64; 5],
    /// Payload bytes injected per class.
    pub bytes: [u64; 5],
    /// Bytes x links-traversed per class (energy-proportional work),
    /// including header bytes.
    pub hop_bytes: [u64; 5],
    /// Hop-bytes per tenant (index = tenant id), grown on demand.
    /// Sums to [`NocStats::total_hop_bytes`] by construction.
    pub tenant_hop_bytes: Vec<u64>,
    /// Hop-bytes actually accumulated link-by-link as packets traverse
    /// the mesh. `hop_bytes` is charged up front at injection from the
    /// Manhattan route length; this odometer counts real traversals, so
    /// once drained the two must agree — any route table or hop formula
    /// still assuming a fixed mesh shape breaks the equality.
    pub hop_bytes_traversed: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Sum of delivery latencies in base ticks (for averages).
    pub latency_ticks: u64,
    /// Cycles in which at least one link stalled for back-pressure.
    pub stall_cycles: u64,
}

impl NocStats {
    /// Total payload bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total hop-bytes across all classes.
    pub fn total_hop_bytes(&self) -> u64 {
        self.hop_bytes.iter().sum()
    }

    /// Hop-bytes attributed to `tenant` (0 for tenants that never sent).
    pub fn tenant_hop_bytes(&self, tenant: u16) -> u64 {
        self.tenant_hop_bytes
            .get(tenant as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Average packet latency in base ticks.
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_ticks as f64 / self.delivered as f64
        }
    }

    /// Folds the statistics into a [`distda_sim::Report`].
    pub fn report(&self) -> distda_sim::Report {
        let mut r = distda_sim::Report::new();
        for c in TrafficClass::ALL {
            r.add(format!("bytes.{}", c.name()), self.bytes[c.index()] as f64);
            r.add(
                format!("hop_bytes.{}", c.name()),
                self.hop_bytes[c.index()] as f64,
            );
            r.add(
                format!("packets.{}", c.name()),
                self.packets[c.index()] as f64,
            );
        }
        r.add("delivered", self.delivered as f64);
        r.add("avg_latency_ticks", self.avg_latency());
        r.add("stall_cycles", self.stall_cycles as f64);
        r
    }
}

#[derive(Debug, Clone)]
struct InFlight<P> {
    pkt: Packet<P>,
    /// Tick at which it may leave its current queue. The packet's
    /// position (and therefore its remaining route) is implied by which
    /// queue holds it: XY next-hops are recomputed per hop from the
    /// position and `pkt.dst`, so nothing per-packet is allocated.
    ready_at: Tick,
    injected_at: Tick,
}

/// A 2D mesh NoC carrying packets with opaque payloads.
///
/// Per-link state is laid out struct-of-arrays: the packet queues
/// (`link_q`/`inj_q`), the head ready-times the hot loops scan
/// (`link_head`/`inj_head`, `Tick::MAX` when empty) and occupancy
/// bitmasks (`link_occ`/`inj_occ`) live in parallel arrays indexed by
/// directed-link / node id, so [`Mesh::tick`] and [`Mesh::next_event`]
/// touch only dense words and the queues that actually hold packets.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Mesh<P> {
    cols: usize,
    rows: usize,
    cfg: NocConfig,
    clock: ClockDomain,
    /// Packet queue per directed link (4 per node: E, W, N, S).
    link_q: Vec<Fifo<InFlight<P>>>,
    /// `ready_at` of each link queue's head; `Tick::MAX` when empty.
    link_head: Vec<Tick>,
    /// One bit per link: set while its queue is non-empty.
    link_occ: Vec<u64>,
    /// Injection queue per node.
    inj_q: Vec<Fifo<InFlight<P>>>,
    /// `ready_at` of each injection queue's head; `Tick::MAX` when empty.
    inj_head: Vec<Tick>,
    /// One bit per node: set while its injection queue is non-empty.
    inj_occ: Vec<u64>,
    /// Per-node delivery ports: ejected packets wait here until the
    /// owner accepts them through the port handshake. Unbounded —
    /// ejection must never deadlock the router; the owner drains every
    /// inbox each delivery phase.
    inbox: Vec<Channel<Packet<P>>>,
    /// Total packets across every inbox (O(1) pending check).
    inbox_count: usize,
    stats: NocStats,
    in_flight: usize,
    sink: TraceSink,
    san: Sanitizer,
}

impl<P> Mesh<P> {
    /// Creates a `cols x rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize, cfg: NocConfig, clock: ClockDomain) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        let n = cols * rows;
        Self {
            cols,
            rows,
            cfg,
            clock,
            // 4 directed links per node (E, W, N, S); boundary links unused.
            link_q: (0..n * 4).map(|_| Fifo::new(cfg.link_queue)).collect(),
            link_head: vec![Tick::MAX; n * 4],
            link_occ: vec![0; (n * 4).div_ceil(64)],
            inj_q: (0..n).map(|_| Fifo::new(cfg.inject_queue)).collect(),
            inj_head: vec![Tick::MAX; n],
            inj_occ: vec![0; n.div_ceil(64)],
            inbox: (0..n).map(|_| Channel::unbounded()).collect(),
            inbox_count: 0,
            stats: NocStats::default(),
            in_flight: 0,
            sink: TraceSink::default(),
            san: Sanitizer::disabled(),
        }
    }

    /// Attaches a trace sink; injections, deliveries and occupancy are
    /// recorded on it. A default (disabled) sink costs nothing.
    pub fn set_sink(&mut self, sink: TraceSink) {
        self.sink = sink;
    }

    /// Attaches an invariant sanitizer; ejections check timestamp
    /// monotonicity and [`Mesh::check_conservation`] audits flit
    /// accounting. A disabled sanitizer costs nothing.
    pub fn set_sanitizer(&mut self, san: Sanitizer) {
        self.san = san;
    }

    /// Audits flit conservation: packets injected must equal packets
    /// delivered plus packets still queued, and the cached `in_flight`
    /// count must agree with the queues. Flags violations on the attached
    /// sanitizer.
    pub fn check_conservation(&self, now: Tick) {
        if !self.san.on() {
            return;
        }
        let injected: u64 = self.stats.packets.iter().sum();
        let queued: usize = self.link_q.iter().map(|q| q.len()).sum::<usize>()
            + self.inj_q.iter().map(|q| q.len()).sum::<usize>();
        let inboxed: usize = self.inbox.iter().map(|b| b.len()).sum();
        self.san.check(
            self.in_flight == queued,
            "noc",
            "in-flight-count",
            now,
            || in_flight_msg(self.in_flight, queued),
        );
        self.san.check(
            injected == self.stats.delivered + queued as u64,
            "noc",
            "flit-conservation",
            now,
            || conservation_msg(injected, self.stats.delivered, queued, inboxed),
        );
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Mesh width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mesh height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The clock domain the mesh ticks in.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Manhattan hop count between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ax, ay) = (a % self.cols, a / self.cols);
        let (bx, by) = (b % self.cols, b / self.cols);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// The node a packet sitting in link queue `li` has arrived at: the
    /// neighbor of the link's source node in the link's direction.
    fn link_dst_node(&self, li: usize) -> NodeId {
        let node = li / 4;
        match li % 4 {
            0 => node + 1,         // east
            1 => node - 1,         // west
            2 => node + self.cols, // north (increasing y)
            _ => node - self.cols, // south
        }
    }

    /// Next directed link on the XY route (x first, then y) from `at`
    /// toward `dst`, `None` when the packet is at its destination.
    fn next_link(&self, at: NodeId, dst: NodeId) -> Option<usize> {
        let (x, y) = (at % self.cols, at / self.cols);
        let (dx, dy) = (dst % self.cols, dst / self.cols);
        if x < dx {
            Some(at * 4) // east
        } else if x > dx {
            Some(at * 4 + 1) // west
        } else if y < dy {
            Some(at * 4 + 2) // north
        } else if y > dy {
            Some(at * 4 + 3) // south
        } else {
            None
        }
    }

    fn serialization_cycles(&self, bytes: u32) -> u64 {
        ((bytes + HEADER_BYTES).div_ceil(self.cfg.flit_bytes)) as u64
    }

    /// Attempts to inject a packet at its source node's injection queue.
    ///
    /// # Errors
    ///
    /// Returns the packet back when the injection queue is full; the caller
    /// should retry on a later cycle (this models source throttling).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn try_inject(&mut self, now: Tick, pkt: Packet<P>) -> Result<(), Packet<P>> {
        assert!(pkt.src < self.node_count() && pkt.dst < self.node_count());
        let node = pkt.src;
        if self.inj_q[node].is_full() {
            return Err(pkt);
        }
        let class = pkt.class;
        let idx = class.index();
        let hops = self.hops(pkt.src, pkt.dst);
        let bytes = pkt.bytes;
        let dst_node = pkt.dst;
        let tenant = pkt.tenant;
        let flight = InFlight {
            pkt,
            ready_at: now + self.clock.ticks_for_cycles(self.cfg.hop_latency.min(1)),
            injected_at: now,
        };
        if self.inj_q[node].is_empty() {
            self.inj_head[node] = flight.ready_at;
            self.inj_occ[node / 64] |= 1 << (node % 64);
        }
        self.inj_q[node]
            .try_push(flight)
            .ok()
            .expect("fullness checked above");
        self.stats.packets[idx] += 1;
        self.stats.bytes[idx] += bytes as u64;
        self.stats.hop_bytes[idx] += (bytes + HEADER_BYTES) as u64 * hops;
        if self.stats.tenant_hop_bytes.len() <= tenant as usize {
            self.stats.tenant_hop_bytes.resize(tenant as usize + 1, 0);
        }
        self.stats.tenant_hop_bytes[tenant as usize] += (bytes + HEADER_BYTES) as u64 * hops;
        self.in_flight += 1;
        if self.sink.on() {
            self.sink.instant(
                now,
                EventKind::NocFlit {
                    class: class.name(),
                    src: node as u16,
                    dst: dst_node as u16,
                    bytes,
                },
            );
            self.sink.count(class.name(), 1);
            self.sink.sample(now, "in_flight", self.in_flight as f64);
        }
        Ok(())
    }

    /// Whether any packet is still queued or in flight.
    pub fn is_active(&self) -> bool {
        self.in_flight > 0
    }

    /// Free slots in the injection queue of `node`.
    pub fn inject_credits(&self, node: NodeId) -> usize {
        self.inj_q[node].credits()
    }

    /// Advances the mesh by one base tick. Only does work on this domain's
    /// clock edges.
    ///
    /// One batch pass per tick: every occupied queue (found via the
    /// occupancy bitmasks, ascending index — the same deterministic order
    /// as a full scan) gets one head-advance opportunity. Link heads move
    /// first (freeing space), then injections. A queue that becomes
    /// occupied mid-pass only holds a packet pushed *this* edge, whose
    /// `ready_at` is in the future, so skipping or visiting it is
    /// behaviour-identical.
    pub fn tick(&mut self, now: Tick) {
        if !self.clock.fires_at(now) || self.in_flight == 0 {
            return;
        }
        let mut stalled = false;
        for w in 0..self.link_occ.len() {
            let mut bits = self.link_occ[w];
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                stalled |= self.advance_head(now, Source::Link(i));
            }
        }
        for w in 0..self.inj_occ.len() {
            let mut bits = self.inj_occ[w];
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                stalled |= self.advance_head(now, Source::Inject(i));
            }
        }
        if stalled {
            self.stats.stall_cycles += 1;
        }
    }

    /// Pops the head of `src`'s queue, maintaining the head-ready array
    /// and occupancy bit.
    fn pop_head(&mut self, src: Source) -> InFlight<P> {
        let (q, heads, occ, i) = match src {
            Source::Link(i) => (
                &mut self.link_q[i],
                &mut self.link_head,
                &mut self.link_occ,
                i,
            ),
            Source::Inject(i) => (&mut self.inj_q[i], &mut self.inj_head, &mut self.inj_occ, i),
        };
        let f = q.pop().expect("pop_head on empty queue");
        match q.front() {
            Some(n) => heads[i] = n.ready_at,
            None => {
                heads[i] = Tick::MAX;
                occ[i / 64] &= !(1 << (i % 64));
            }
        }
        f
    }

    fn advance_head(&mut self, now: Tick, src: Source) -> bool {
        let (ready_at, at) = match src {
            Source::Link(i) => (self.link_head[i], self.link_dst_node(i)),
            Source::Inject(i) => (self.inj_head[i], i),
        };
        // Covers both "not yet ready" and "empty" (`Tick::MAX`).
        if ready_at > now {
            return false;
        }
        let dst = match src {
            Source::Link(i) => self.link_q[i].front().expect("occupied").pkt.dst,
            Source::Inject(i) => self.inj_q[i].front().expect("occupied").pkt.dst,
        };
        match self.next_link(at, dst) {
            None => {
                // Eject at destination.
                let f = self.pop_head(src);
                self.stats.delivered += 1;
                let elapsed =
                    self.san
                        .checked_elapsed("noc", "monotone-delivery", now, f.injected_at);
                self.stats.latency_ticks += elapsed;
                self.in_flight -= 1;
                if self.sink.on() {
                    self.sink.observe("latency_ticks", elapsed);
                    self.sink.sample(now, "in_flight", self.in_flight as f64);
                }
                let accepted = self.inbox[f.pkt.dst].tx().offer(f.pkt).is_ok();
                debug_assert!(accepted, "inboxes are unbounded");
                self.inbox_count += 1;
                false
            }
            Some(link) => {
                if self.link_q[link].is_full() {
                    return true; // back-pressure stall
                }
                let mut f = self.pop_head(src);
                self.stats.hop_bytes_traversed += (f.pkt.bytes + HEADER_BYTES) as u64;
                let occupancy = self.cfg.hop_latency + self.serialization_cycles(f.pkt.bytes);
                f.ready_at = now + self.clock.ticks_for_cycles(occupancy);
                if self.link_q[link].is_empty() {
                    self.link_head[link] = f.ready_at;
                    self.link_occ[link / 64] |= 1 << (link % 64);
                }
                self.link_q[link]
                    .try_push(f)
                    .ok()
                    .expect("space checked above");
                false
            }
        }
    }

    /// Whether any delivered packet is waiting in an inbox.
    pub fn has_inbox_pending(&self) -> bool {
        self.inbox_count > 0
    }

    /// Earliest tick `>= now` at which [`Mesh::tick`] would do observable
    /// work, or `None` when nothing is queued or in flight.
    ///
    /// A head packet that is already ready must be re-examined on every
    /// clock edge (a blocked head charges `stall_cycles` per edge); a head
    /// that becomes ready at `t` first matters at the edge at or after `t`.
    /// Undrained inboxes demand an immediate tick by the owner.
    pub fn next_event(&self, now: Tick) -> Option<Tick> {
        if self.inbox_count > 0 {
            return Some(now);
        }
        if self.in_flight == 0 {
            return None;
        }
        // `base` is the floor of every candidate; once a ready head hits
        // it, no later front can beat it, so stop scanning (the common
        // case while traffic is flowing). Only occupied queues are
        // visited, and only their dense head-ready words are read.
        let base = self.clock.next_edge(now);
        let mut earliest: Option<Tick> = None;
        for (occ, heads) in [
            (&self.link_occ, &self.link_head),
            (&self.inj_occ, &self.inj_head),
        ] {
            for (w, &word) in occ.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let i = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let edge = self.clock.next_edge(heads[i].max(now));
                    if edge == base {
                        return Some(base);
                    }
                    earliest = distda_sim::time::earliest(earliest, Some(edge));
                }
            }
        }
        earliest
    }

    /// Removes and returns all packets delivered to `node`.
    pub fn drain_inbox(&mut self, node: NodeId) -> Vec<Packet<P>> {
        let ch = &mut self.inbox[node];
        self.inbox_count -= ch.len();
        let mut v = Vec::with_capacity(ch.len());
        let mut rx = ch.rx();
        while let Some(pkt) = rx.accept() {
            v.push(pkt);
        }
        v
    }

    /// Batch-phase delivery: hands every inboxed packet to `f` in
    /// ascending node order (FIFO within a node) and clears the inboxes.
    /// Unlike per-node [`Mesh::drain_inbox`] this neither allocates nor
    /// visits empty inboxes, so an owner that fans deliveries out itself
    /// drains the whole mesh in one pass.
    pub fn for_each_delivered(&mut self, mut f: impl FnMut(NodeId, Packet<P>)) {
        if self.inbox_count == 0 {
            return;
        }
        self.inbox_count = 0;
        for node in 0..self.inbox.len() {
            let mut rx = self.inbox[node].rx();
            while let Some(pkt) = rx.accept() {
                f(node, pkt);
            }
        }
    }

    /// Number of packets waiting in `node`'s inbox.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.inbox[node].len()
    }

    /// Port statistics of every node's delivery inbox, named
    /// `noc.inbox<node>`.
    pub fn inbox_snapshots(&self) -> Vec<PortSnapshot> {
        self.inbox
            .iter()
            .enumerate()
            .map(|(n, ch)| ch.snapshot(distda_sim::port_names::noc_inbox(n)))
            .collect()
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Audits the drained mesh: flit conservation
    /// ([`Mesh::check_conservation`]), every inbox empty, and hop
    /// conservation — the hop-bytes charged up front at injection (from
    /// the Manhattan route formula) must equal the hop-bytes actually
    /// accumulated link-by-link by the router, and the per-tenant split
    /// must sum to the per-class totals. A mismatch means some route
    /// table or hop-count derivation disagrees with the real topology
    /// (e.g. a leftover hard-coded mesh shape). Flags violations on the
    /// attached sanitizer; a no-op when it is disabled.
    pub fn check_drained(&self, now: Tick) {
        if !self.san.on() {
            return;
        }
        self.check_conservation(now);
        let charged = self.stats.total_hop_bytes();
        self.san.check(
            self.stats.hop_bytes_traversed == charged,
            "noc",
            "hop-conservation",
            now,
            || hop_conservation_msg(charged, self.stats.hop_bytes_traversed),
        );
        let tenant_sum: u64 = self.stats.tenant_hop_bytes.iter().sum();
        self.san.check(
            tenant_sum == charged,
            "noc",
            "tenant-hop-partition",
            now,
            || tenant_partition_msg(charged, tenant_sum),
        );
        for node in 0..self.node_count() {
            self.san.check(
                self.inbox[node].is_empty(),
                "noc",
                "inbox-drain",
                now,
                || inbox_drain_msg(node, self.inbox[node].len()),
            );
        }
    }
}

/// The mesh as a self-contained [`Component`](distda_sim::Component): it
/// carries its own queues and clock, so it implements the protocol for
/// any world. Composed machines that route packets *into* the mesh from
/// world state (injection queues, inboxes) wrap it in their own adapter
/// instead; this impl serves standalone scheduling and conformance tests.
impl<W, P> distda_sim::Component<W> for Mesh<P> {
    fn name(&self) -> &str {
        "noc"
    }

    fn attach(&mut self, _world: &mut W, instr: &distda_sim::Instruments) {
        self.set_sink(instr.tracer.sink("noc"));
        self.set_sanitizer(instr.san.clone());
    }

    fn tick(&mut self, now: Tick, _world: &mut W, _instr: &mut distda_sim::Instruments) {
        Mesh::tick(self, now);
    }

    fn next_event(&self, now: Tick, _world: &W) -> Option<Tick> {
        Mesh::next_event(self, now)
    }

    fn is_quiescent(&self, _now: Tick, _world: &W) -> bool {
        !self.is_active() && !self.has_inbox_pending()
    }

    fn audit_drained(&self, now: Tick, _world: &W, _san: &Sanitizer) {
        self.check_drained(now);
    }

    fn stall(&self, _now: Tick, _world: &W) -> Option<String> {
        self.is_active().then(|| "mesh active".to_string())
    }
}

#[derive(Debug, Clone, Copy)]
enum Source {
    Link(usize),
    Inject(usize),
}

// Failure-message constructors, out of line and `#[cold]`: they only run
// when an invariant has already been violated, and keeping the `format!`
// machinery out of the audit functions keeps those inlinable.

#[cold]
#[inline(never)]
fn in_flight_msg(in_flight: usize, queued: usize) -> String {
    format!("cached in_flight {in_flight} != {queued} packets in link/inject queues")
}

#[cold]
#[inline(never)]
fn conservation_msg(injected: u64, delivered: u64, queued: usize, inboxed: usize) -> String {
    format!("injected {injected} != delivered {delivered} + queued {queued} (inboxed {inboxed})")
}

#[cold]
#[inline(never)]
fn inbox_drain_msg(node: NodeId, held: usize) -> String {
    format!("node {node} inbox holds {held} undelivered packets")
}

#[cold]
#[inline(never)]
fn hop_conservation_msg(charged: u64, traversed: u64) -> String {
    format!(
        "hop-bytes charged at inject {charged} != hop-bytes traversed {traversed}: \
         route/hop-count derivation disagrees with the actual topology"
    )
}

#[cold]
#[inline(never)]
fn tenant_partition_msg(charged: u64, tenant_sum: u64) -> String {
    format!("per-tenant hop-bytes sum {tenant_sum} != total hop-bytes {charged}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use distda_sim::time::ClockDomain;

    fn mesh() -> Mesh<u64> {
        Mesh::new(4, 2, NocConfig::default(), ClockDomain::from_ghz(2.0))
    }

    fn run_until_quiet(m: &mut Mesh<u64>) -> Tick {
        let mut t = 0;
        while m.is_active() {
            m.tick(t);
            t += 1;
            assert!(t < 1_000_000, "mesh did not drain");
        }
        t
    }

    #[test]
    fn hops_is_manhattan_distance() {
        let m = mesh();
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 4), 1);
        assert_eq!(m.hops(0, 7), 4);
        assert_eq!(m.hops(5, 5), 0);
    }

    #[test]
    fn delivers_single_packet() {
        let mut m = mesh();
        m.try_inject(0, Packet::new(0, 7, 64, TrafficClass::AccData, 42))
            .unwrap();
        run_until_quiet(&mut m);
        let got = m.drain_inbox(7);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, 42);
        assert_eq!(m.stats().delivered, 1);
    }

    #[test]
    fn local_delivery_works() {
        let mut m = mesh();
        m.try_inject(0, Packet::new(3, 3, 8, TrafficClass::AccCtrl, 1))
            .unwrap();
        run_until_quiet(&mut m);
        assert_eq!(m.drain_inbox(3).len(), 1);
        // Zero hops -> zero hop-bytes.
        assert_eq!(m.stats().hop_bytes[TrafficClass::AccCtrl.index()], 0);
    }

    #[test]
    fn hop_bytes_accounts_header_and_distance() {
        let mut m = mesh();
        m.try_inject(0, Packet::new(0, 3, 64, TrafficClass::HostData, 0))
            .unwrap();
        run_until_quiet(&mut m);
        assert_eq!(
            m.stats().hop_bytes[TrafficClass::HostData.index()],
            (64 + HEADER_BYTES as u64) * 3
        );
    }

    #[test]
    fn per_pair_ordering_is_fifo() {
        let mut m = mesh();
        for i in 0..5 {
            m.try_inject(0, Packet::new(1, 6, 16, TrafficClass::AccData, i))
                .unwrap();
        }
        run_until_quiet(&mut m);
        let got: Vec<u64> = m.drain_inbox(6).into_iter().map(|p| p.payload).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn injection_queue_back_pressure() {
        let mut m = mesh();
        let mut rejected = 0;
        for i in 0..100 {
            if m.try_inject(0, Packet::new(0, 7, 256, TrafficClass::HostData, i))
                .is_err()
            {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "expected finite injection capacity");
        run_until_quiet(&mut m);
        assert_eq!(m.stats().delivered + rejected, 100);
    }

    #[test]
    fn contention_increases_latency() {
        // One packet alone vs. the same packet behind heavy cross traffic.
        let mut alone = mesh();
        alone
            .try_inject(0, Packet::new(0, 3, 64, TrafficClass::AccData, 0))
            .unwrap();
        run_until_quiet(&mut alone);
        let solo_lat = alone.stats().avg_latency();

        let mut busy = mesh();
        for i in 0..6 {
            busy.try_inject(0, Packet::new(0, 3, 256, TrafficClass::HostData, i))
                .unwrap();
        }
        busy.try_inject(0, Packet::new(0, 3, 64, TrafficClass::AccData, 99))
            .unwrap();
        run_until_quiet(&mut busy);
        assert!(busy.stats().avg_latency() > solo_lat);
        assert!(busy.stats().stall_cycles > 0 || busy.stats().avg_latency() > solo_lat);
    }

    #[test]
    fn bigger_packets_serialize_longer() {
        let lat = |bytes: u32| {
            let mut m = mesh();
            m.try_inject(0, Packet::new(0, 7, bytes, TrafficClass::MemData, 0))
                .unwrap();
            run_until_quiet(&mut m);
            m.stats().avg_latency()
        };
        assert!(lat(256) > lat(16));
    }

    #[test]
    fn batched_drain_delivers_everything_in_node_order() {
        let mut m = mesh();
        m.try_inject(0, Packet::new(0, 6, 16, TrafficClass::AccData, 60))
            .unwrap();
        m.try_inject(0, Packet::new(1, 2, 16, TrafficClass::AccData, 20))
            .unwrap();
        m.try_inject(0, Packet::new(3, 2, 16, TrafficClass::AccData, 21))
            .unwrap();
        run_until_quiet(&mut m);
        assert!(m.has_inbox_pending());
        let mut got = Vec::new();
        m.for_each_delivered(|node, p| got.push((node, p.payload)));
        // Ascending node order; within-node order matches per-node drain.
        assert_eq!(got.len(), 3);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(!m.has_inbox_pending());
        assert_eq!(m.inbox_len(2), 0);
        // A second batch drain is a no-op.
        m.for_each_delivered(|_, _| panic!("inbox should be empty"));
    }

    #[test]
    fn stats_report_has_all_classes() {
        let m = mesh();
        let r = m.stats().report();
        for c in TrafficClass::ALL {
            assert!(r.get(&format!("bytes.{}", c.name())).is_some());
        }
    }

    #[test]
    fn hop_conservation_catches_wrong_charge() {
        // Simulate a stale hop-count derivation: charge hop-bytes for a
        // route the router never takes. The drain audit must flag it.
        let mut m = mesh();
        m.set_sanitizer(Sanitizer::enabled());
        m.try_inject(0, Packet::new(0, 7, 64, TrafficClass::AccData, 1))
            .unwrap();
        run_until_quiet(&mut m);
        m.drain_inbox(7);
        m.stats.hop_bytes[TrafficClass::AccData.index()] += 72; // phantom hop
        m.check_drained(1_000);
        let kinds: Vec<&'static str> = m.san.take().into_iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&"hop-conservation"), "{kinds:?}");
        assert!(kinds.contains(&"tenant-hop-partition"), "{kinds:?}");
    }

    /// Deterministic SplitMix64 for the property tests below.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Walks the XY route from `src` to `dst`, asserting legality at
    /// every step: each link leaves the current node, x is corrected
    /// before y ever moves, and the walk terminates in exactly
    /// `hops(src, dst)` steps.
    fn assert_route_legal<P>(m: &Mesh<P>, src: NodeId, dst: NodeId) {
        let mut at = src;
        let mut steps = 0u64;
        let mut moved_y = false;
        while let Some(link) = m.next_link(at, dst) {
            assert_eq!(link / 4, at, "link {link} does not originate at {at}");
            let next = m.link_dst_node(link);
            assert!(next < m.node_count(), "route left the mesh at {next}");
            let dir = link % 4;
            if dir >= 2 {
                moved_y = true;
                assert_eq!(
                    at % m.cols(),
                    dst % m.cols(),
                    "y move before x was corrected"
                );
            } else {
                assert!(!moved_y, "x move after y started (not XY order)");
            }
            assert_eq!(m.hops(next, dst) + 1, m.hops(at, dst), "hop not forward");
            at = next;
            steps += 1;
            assert!(steps <= (m.cols() + m.rows()) as u64, "route cycles");
        }
        assert_eq!(at, dst);
        assert_eq!(steps, m.hops(src, dst));
    }

    #[test]
    fn property_random_meshes_route_xy_with_manhattan_hops() {
        let mut rng = Rng(0x5eed_0001);
        for _ in 0..64 {
            let cols = rng.below(9) as usize + 1;
            let rows = rng.below(9) as usize + 1;
            let m: Mesh<u64> =
                Mesh::new(cols, rows, NocConfig::default(), ClockDomain::from_ghz(2.0));
            for _ in 0..32 {
                let src = rng.below((cols * rows) as u64) as usize;
                let dst = rng.below((cols * rows) as u64) as usize;
                let (sx, sy) = (src % cols, src / cols);
                let (dx, dy) = (dst % cols, dst / cols);
                assert_eq!(m.hops(src, dst), (sx.abs_diff(dx) + sy.abs_diff(dy)) as u64);
                assert_route_legal(&m, src, dst);
            }
        }
    }

    #[test]
    fn property_random_meshes_conserve_flits_and_hop_bytes() {
        let mut rng = Rng(0x5eed_0002);
        for _ in 0..24 {
            let cols = rng.below(8) as usize + 1;
            let rows = rng.below(6) as usize + 1;
            let nodes = cols * rows;
            let mut m: Mesh<u64> =
                Mesh::new(cols, rows, NocConfig::default(), ClockDomain::from_ghz(2.0));
            m.set_sanitizer(Sanitizer::enabled());
            let n_pkts = rng.below(40) + 1;
            let mut injected = 0u64;
            let mut t = 0;
            for i in 0..n_pkts {
                let src = rng.below(nodes as u64) as usize;
                let dst = rng.below(nodes as u64) as usize;
                let bytes = (rng.below(256) + 1) as u32;
                let tenant = rng.below(4) as u16;
                let class = TrafficClass::ALL[rng.below(5) as usize];
                let pkt = Packet::new(src, dst, bytes, class, i).with_tenant(tenant);
                if m.try_inject(t, pkt).is_ok() {
                    injected += 1;
                }
                // Let some traffic drain so injection queues reopen.
                if i % 4 == 3 {
                    m.tick(t);
                    t += 1;
                }
            }
            while m.is_active() {
                m.tick(t);
                t += 1;
                assert!(t < 1_000_000, "mesh did not drain");
            }
            let mut delivered = 0u64;
            m.for_each_delivered(|_, _| delivered += 1);
            assert_eq!(delivered, injected);
            m.check_drained(t);
            let violations = m.san.take();
            assert!(violations.is_empty(), "{violations:?}");
            assert_eq!(
                m.stats().tenant_hop_bytes.iter().sum::<u64>(),
                m.stats().total_hop_bytes()
            );
            assert_eq!(m.stats().hop_bytes_traversed, m.stats().total_hop_bytes());
        }
    }
}
