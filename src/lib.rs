//! # distda — facade crate
//!
//! Re-exports the entire Dist-DA reproduction workspace under one roof so
//! examples and integration tests can `use distda::...`.
//!
//! See the crate-level docs of each member for details:
//! [`sim`], [`noc`], [`mem`], [`ir`], [`compiler`], [`accel`], [`energy`],
//! [`system`], [`workloads`], [`check`], [`obs`].

pub use distda_accel as accel;
pub use distda_check as check;
pub use distda_compiler as compiler;
pub use distda_energy as energy;
pub use distda_explain as explain;
pub use distda_ir as ir;
pub use distda_mem as mem;
pub use distda_noc as noc;
pub use distda_obs as obs;
pub use distda_sim as sim;
pub use distda_system as system;
pub use distda_trace as trace;
pub use distda_workloads as workloads;
