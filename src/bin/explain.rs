//! The "why is it slow?" CLI: run kernels with the explain sampler
//! attached and print each run's ranked causal tree — which engine lost
//! the most time, on which port, and who that port was waiting on in
//! turn — with exact tick accounting (`blamed + busy + idle == ticks`).
//!
//! ```text
//! cargo run --release --bin explain -- --kernel pf
//! cargo run --release --bin explain -- --check          # all 12 kernels, CI mode
//! cargo run --release --bin explain -- --kernel bfs --config OoO --json
//! ```
//!
//! Flags:
//!
//! - `--kernel NAME`... — kernels to explain (default: the whole
//!   twelve-benchmark suite).
//! - `--config LABEL` — machine configuration (default `Dist-DA-F`).
//! - `--scale tiny|eval` — input scale (default `tiny`).
//! - `--window TICKS` — sampling window in base ticks (default 4096).
//! - `--out DIR` — where trees are written (default `results`).
//! - `--json` — print the JSON rendering instead of the text tree.
//! - `--check` — CI mode: besides printing, assert that every tree's
//!   JSON parses, that accounting is exact for every engine, and that
//!   the analyzer reported no violations; exit nonzero otherwise.

use distda::explain::{render_json, render_text, top_bottleneck};
use distda::system::{ConfigKind, RunConfig};
use distda::workloads::{suite, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    kernels: Vec<String>,
    config: String,
    scale: String,
    window: u64,
    out: PathBuf,
    json: bool,
    check: bool,
}

const USAGE: &str = "usage: explain [--kernel NAME]... [--config LABEL] [--scale tiny|eval] [--window TICKS] [--out DIR] [--json] [--check]";

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let mut args = Args {
        kernels: Vec::new(),
        config: "Dist-DA-F".to_string(),
        scale: "tiny".to_string(),
        window: distda::sim::sample::DEFAULT_WINDOW_TICKS,
        out: PathBuf::from("results"),
        json: false,
        check: false,
    };
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--kernel" => args.kernels.push(value("--kernel")?),
            "--config" => args.config = value("--config")?,
            "--scale" => args.scale = value("--scale")?,
            "--window" => {
                args.window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--json" => args.json = true,
            "--check" => args.check = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

fn run() -> Result<u32, String> {
    let args = parse_args()?;
    let scale = match args.scale.as_str() {
        "tiny" => Scale::tiny(),
        "eval" => Scale::eval(),
        other => return Err(format!("unknown scale: {other} (expected tiny or eval)")),
    };
    let cfg = ConfigKind::ALL
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(&args.config))
        .map(RunConfig::named)
        .ok_or_else(|| {
            format!(
                "unknown config: {} (expected one of {})",
                args.config,
                ConfigKind::ALL.map(|k| k.label()).join(", ")
            )
        })?;
    let workloads = suite(&scale);
    let selected: Vec<_> = if args.kernels.is_empty() {
        workloads.iter().collect()
    } else {
        let mut sel = Vec::new();
        for name in &args.kernels {
            sel.push(workloads.iter().find(|w| &w.name == name).ok_or_else(|| {
                format!(
                    "unknown kernel: {name} (available: {})",
                    workloads
                        .iter()
                        .map(|w| w.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?);
        }
        sel
    };
    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;

    let mut failures = 0u32;
    for w in selected {
        let sampler =
            distda::sim::Sampler::enabled(args.window, distda::sim::sample::DEFAULT_WINDOW_CAP);
        let (r, x) = match w.try_simulate_explained(&cfg, None, &sampler) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{} / {}: {e}", w.name, cfg.kind.label());
                failures += 1;
                continue;
            }
        };
        let Some(x) = x else {
            eprintln!(
                "{}: sampler was attached but no explanation came back",
                w.name
            );
            failures += 1;
            continue;
        };
        println!("=== {} / {} ===", r.kernel, r.config);
        if args.json {
            println!("{}", render_json(&x));
        } else {
            print!("{}", render_text(&x));
        }
        let base = args
            .out
            .join(format!("explain_{}_{}", slug(&r.kernel), slug(&r.config)));
        let write = |ext: &str, body: &str| {
            let p = base.with_extension(ext);
            std::fs::write(&p, body).map_err(|e| format!("cannot write {}: {e}", p.display()))
        };
        write("txt", &render_text(&x))?;
        write("json", &render_json(&x))?;

        if args.check {
            for v in &x.violations {
                eprintln!("{}: VIOLATION: {v}", w.name);
                failures += 1;
            }
            for e in &x.engines {
                if e.blamed_ticks + e.busy_ticks + e.idle_ticks != x.ticks {
                    eprintln!(
                        "{}: {} accounting not exact: {} + {} + {} != {}",
                        w.name, e.name, e.blamed_ticks, e.busy_ticks, e.idle_ticks, x.ticks
                    );
                    failures += 1;
                }
            }
            if let Err(e) = distda::trace::json::parse(&render_json(&x)) {
                eprintln!("{}: tree JSON does not parse: {e:?}", w.name);
                failures += 1;
            }
            let verdict = top_bottleneck(&r.report)
                .map(|(who, share)| format!("{who} ({:.1}% of stall ticks)", share * 100.0))
                .unwrap_or_else(|| "no stalls".to_string());
            println!("verdict: {verdict}");
        }
        println!();
    }
    Ok(failures)
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => {
            eprintln!("{n} failure(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
